#include "sql/lexer.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace sdw::sql {

namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string>& keywords = *new std::set<std::string>{
      "SELECT", "FROM",       "WHERE",    "GROUP",    "BY",       "ORDER",
      "LIMIT",  "JOIN",       "ON",       "AND",      "AS",       "ASC",
      "DESC",   "CREATE",     "TABLE",    "DROP",     "INSERT",   "INTO",
      "VALUES", "COPY",       "FORMAT",   "CSV",      "JSON",     "COMPUPDATE",
      "ON",     "OFF",        "DISTSTYLE", "EVEN",    "ALL",      "KEY",
      "DISTKEY", "SORTKEY",   "COMPOUND", "INTERLEAVED", "ENCODE", "EXPLAIN",
      "ANALYZE", "COUNT",     "SUM",      "MIN",      "MAX",      "AVG",
      "APPROXIMATE", "DISTINCT", "BETWEEN", "IN", "LIKE",
      "BEGIN", "COMMIT", "ROLLBACK",
      "BIGINT", "INTEGER",    "INT",      "DOUBLE",   "PRECISION", "FLOAT",
      "VARCHAR", "TEXT",      "DATE",     "BOOLEAN",  "BOOL",     "NULL",
      "TRUE",   "FALSE",      "VACUUM",   "NOT",
  };
  return keywords;
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;  // line comment
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      std::string word = sql.substr(start, i - start);
      std::string upper = word;
      std::transform(upper.begin(), upper.end(), upper.begin(), ::toupper);
      if (Keywords().count(upper)) {
        tokens.push_back({TokenType::kKeyword, upper});
      } else {
        std::string lower = word;
        std::transform(lower.begin(), lower.end(), lower.begin(), ::tolower);
        tokens.push_back({TokenType::kIdent, lower});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      bool is_float = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.')) {
        if (sql[i] == '.') is_float = true;
        ++i;
      }
      tokens.push_back({is_float ? TokenType::kFloat : TokenType::kInteger,
                        sql.substr(start, i - start)});
      continue;
    }
    if (c == '\'') {
      std::string value;
      ++i;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            value.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value.push_back(sql[i++]);
      }
      if (!closed) return Status::InvalidArgument("unterminated string");
      tokens.push_back({TokenType::kString, value});
      continue;
    }
    // Multi-char operators.
    if (c == '<') {
      if (i + 1 < n && (sql[i + 1] == '=' || sql[i + 1] == '>')) {
        tokens.push_back({TokenType::kSymbol, sql.substr(i, 2)});
        i += 2;
        continue;
      }
      tokens.push_back({TokenType::kSymbol, "<"});
      ++i;
      continue;
    }
    if (c == '>') {
      if (i + 1 < n && sql[i + 1] == '=') {
        tokens.push_back({TokenType::kSymbol, ">="});
        i += 2;
        continue;
      }
      tokens.push_back({TokenType::kSymbol, ">"});
      ++i;
      continue;
    }
    if (c == '!' && i + 1 < n && sql[i + 1] == '=') {
      tokens.push_back({TokenType::kSymbol, "<>"});
      i += 2;
      continue;
    }
    if (std::string("(),.;*=").find(c) != std::string::npos) {
      tokens.push_back({TokenType::kSymbol, std::string(1, c)});
      ++i;
      continue;
    }
    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "' in SQL");
  }
  tokens.push_back({TokenType::kEnd, ""});
  return tokens;
}

}  // namespace sdw::sql
