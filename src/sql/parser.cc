#include "sql/parser.h"

#include <algorithm>
#include <cstdlib>
#include <set>

#include "sql/lexer.h"

namespace sdw::sql {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> Parse() {
    SDW_ASSIGN_OR_RETURN(Statement stmt, ParseTop());
    // Optional trailing semicolon, then end.
    (void)AcceptSymbol(";");
    if (!Peek().Is(TokenType::kEnd, "")) {
      return Error("unexpected trailing tokens");
    }
    return stmt;
  }

 private:
  // --- token helpers ---
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  Token Take() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool AcceptKeyword(const std::string& kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const std::string& s) {
    if (Peek().IsSymbol(s)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) return Error("expected " + kw);
    return Status::OK();
  }
  Status ExpectSymbol(const std::string& s) {
    if (!AcceptSymbol(s)) return Error("expected '" + s + "'");
    return Status::OK();
  }
  Result<std::string> ExpectIdent() {
    if (Peek().type == TokenType::kIdent) return Take().text;
    // Non-reserved keywords double as identifiers (PostgreSQL-style), so
    // customers can have columns named "key", "date", "count", ...
    static const std::set<std::string>& non_reserved =
        *new std::set<std::string>{
            "KEY", "DATE", "TEXT", "COUNT", "SUM",    "MIN", "MAX",
            "AVG", "EVEN", "ALL",  "CSV",   "JSON",   "FORMAT", "OFF",
            "BOOL", "INT", "FLOAT"};
    if (Peek().type == TokenType::kKeyword && non_reserved.count(Peek().text)) {
      std::string text = Take().text;
      std::transform(text.begin(), text.end(), text.begin(), ::tolower);
      return text;
    }
    return Status::InvalidArgument("expected identifier near '" +
                                   Peek().text + "'");
  }
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " near '" + Peek().text + "'");
  }

  // --- grammar ---
  Result<Statement> ParseTop() {
    if (AcceptKeyword("CREATE")) return ParseCreateTable();
    if (AcceptKeyword("DROP")) return ParseDropTable();
    if (AcceptKeyword("COPY")) return ParseCopy();
    if (AcceptKeyword("INSERT")) return ParseInsert();
    if (AcceptKeyword("ANALYZE")) return ParseAnalyze();
    if (AcceptKeyword("VACUUM")) return ParseVacuum();
    if (AcceptKeyword("BEGIN")) {
      return Statement(TxnStmt{TxnStmt::Kind::kBegin});
    }
    if (AcceptKeyword("COMMIT")) {
      return Statement(TxnStmt{TxnStmt::Kind::kCommit});
    }
    if (AcceptKeyword("ROLLBACK")) {
      return Statement(TxnStmt{TxnStmt::Kind::kRollback});
    }
    if (AcceptKeyword("EXPLAIN")) {
      const bool analyze = AcceptKeyword("ANALYZE");
      SDW_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
      SDW_ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelect());
      stmt.explain = true;
      stmt.explain_analyze = analyze;
      return Statement(std::move(stmt));
    }
    if (AcceptKeyword("SELECT")) {
      SDW_ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelect());
      return Statement(std::move(stmt));
    }
    return Error("expected a statement");
  }

  Result<TypeId> ParseType() {
    if (AcceptKeyword("BIGINT")) return TypeId::kInt64;
    if (AcceptKeyword("INTEGER") || AcceptKeyword("INT")) {
      return TypeId::kInt32;
    }
    if (AcceptKeyword("DOUBLE")) {
      (void)AcceptKeyword("PRECISION");
      return TypeId::kDouble;
    }
    if (AcceptKeyword("FLOAT")) return TypeId::kDouble;
    if (AcceptKeyword("VARCHAR") || AcceptKeyword("TEXT")) {
      // Optional length (VARCHAR(256)) accepted and ignored.
      if (AcceptSymbol("(")) {
        Take();
        SDW_RETURN_IF_ERROR(ExpectSymbol(")"));
      }
      return TypeId::kString;
    }
    if (AcceptKeyword("DATE")) return TypeId::kDate;
    if (AcceptKeyword("BOOLEAN") || AcceptKeyword("BOOL")) {
      return TypeId::kBool;
    }
    return Status::InvalidArgument("expected a type near '" + Peek().text +
                                   "'");
  }

  Result<ColumnEncoding> ParseEncoding() {
    if (Peek().type != TokenType::kIdent) {
      return Status::InvalidArgument("expected encoding name");
    }
    const std::string name = Take().text;
    if (name == "raw") return ColumnEncoding::kRaw;
    if (name == "runlength") return ColumnEncoding::kRunLength;
    if (name == "delta") return ColumnEncoding::kDelta;
    if (name == "bytedict") return ColumnEncoding::kBytedict;
    if (name == "mostly8") return ColumnEncoding::kMostly8;
    if (name == "mostly16") return ColumnEncoding::kMostly16;
    if (name == "mostly32") return ColumnEncoding::kMostly32;
    if (name == "lzo" || name == "lz") return ColumnEncoding::kLz;
    if (name == "text255") return ColumnEncoding::kText255;
    if (name == "auto") return ColumnEncoding::kAuto;
    return Status::InvalidArgument("unknown encoding '" + name + "'");
  }

  Result<Statement> ParseCreateTable() {
    SDW_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    SDW_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
    SDW_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<ColumnDef> columns;
    while (true) {
      ColumnDef col;
      SDW_ASSIGN_OR_RETURN(col.name, ExpectIdent());
      SDW_ASSIGN_OR_RETURN(col.type, ParseType());
      if (AcceptKeyword("ENCODE")) {
        SDW_ASSIGN_OR_RETURN(col.encoding, ParseEncoding());
      }
      columns.push_back(std::move(col));
      if (AcceptSymbol(",")) continue;
      SDW_RETURN_IF_ERROR(ExpectSymbol(")"));
      break;
    }
    TableSchema schema(name, std::move(columns));
    // Table attributes in any order.
    while (true) {
      if (AcceptKeyword("DISTSTYLE")) {
        if (AcceptKeyword("EVEN")) {
          schema.SetDistStyle(DistStyle::kEven);
        } else if (AcceptKeyword("ALL")) {
          schema.SetDistStyle(DistStyle::kAll);
        } else if (AcceptKeyword("KEY")) {
          // DISTKEY(col) must follow.
        } else {
          return Error("expected EVEN, ALL or KEY");
        }
        continue;
      }
      if (AcceptKeyword("DISTKEY")) {
        SDW_RETURN_IF_ERROR(ExpectSymbol("("));
        SDW_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        SDW_RETURN_IF_ERROR(ExpectSymbol(")"));
        SDW_RETURN_IF_ERROR(schema.SetDistKey(col));
        continue;
      }
      if (Peek().IsKeyword("COMPOUND") || Peek().IsKeyword("INTERLEAVED") ||
          Peek().IsKeyword("SORTKEY")) {
        SortStyle style = SortStyle::kCompound;
        if (AcceptKeyword("INTERLEAVED")) {
          style = SortStyle::kInterleaved;
        } else {
          (void)AcceptKeyword("COMPOUND");
        }
        SDW_RETURN_IF_ERROR(ExpectKeyword("SORTKEY"));
        SDW_RETURN_IF_ERROR(ExpectSymbol("("));
        std::vector<std::string> keys;
        while (true) {
          SDW_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
          keys.push_back(col);
          if (AcceptSymbol(",")) continue;
          SDW_RETURN_IF_ERROR(ExpectSymbol(")"));
          break;
        }
        SDW_RETURN_IF_ERROR(schema.SetSortKey(style, keys));
        continue;
      }
      break;
    }
    return Statement(CreateTableStmt{std::move(schema)});
  }

  Result<Statement> ParseDropTable() {
    SDW_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    SDW_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
    return Statement(DropTableStmt{name});
  }

  Result<Statement> ParseCopy() {
    CopyStmt stmt;
    SDW_ASSIGN_OR_RETURN(stmt.table, ExpectIdent());
    SDW_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    if (Peek().type != TokenType::kString) {
      return Error("expected a quoted source URI");
    }
    stmt.source_uri = Take().text;
    while (true) {
      if (AcceptKeyword("FORMAT")) {
        if (AcceptKeyword("CSV")) {
          stmt.format = CopyStmt::Format::kCsv;
        } else if (AcceptKeyword("JSON")) {
          stmt.format = CopyStmt::Format::kJson;
        } else {
          return Error("expected CSV or JSON");
        }
        continue;
      }
      if (AcceptKeyword("COMPUPDATE")) {
        if (AcceptKeyword("ON")) {
          stmt.compupdate = true;
        } else if (AcceptKeyword("OFF")) {
          stmt.compupdate = false;
        } else {
          return Error("expected ON or OFF");
        }
        continue;
      }
      break;
    }
    return Statement(std::move(stmt));
  }

  Result<Datum> ParseLiteral() {
    if (Peek().type == TokenType::kInteger) {
      return Datum::Int64(std::strtoll(Take().text.c_str(), nullptr, 10));
    }
    if (Peek().type == TokenType::kFloat) {
      return Datum::Double(std::strtod(Take().text.c_str(), nullptr));
    }
    if (Peek().type == TokenType::kString) {
      return Datum::String(Take().text);
    }
    if (AcceptKeyword("NULL")) return Datum::Null();
    if (AcceptKeyword("TRUE")) return Datum::Bool(true);
    if (AcceptKeyword("FALSE")) return Datum::Bool(false);
    return Status::InvalidArgument("expected a literal near '" + Peek().text +
                                   "'");
  }

  Result<Statement> ParseInsert() {
    SDW_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    InsertStmt stmt;
    SDW_ASSIGN_OR_RETURN(stmt.table, ExpectIdent());
    SDW_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    while (true) {
      SDW_RETURN_IF_ERROR(ExpectSymbol("("));
      Row row;
      while (true) {
        SDW_ASSIGN_OR_RETURN(Datum value, ParseLiteral());
        row.push_back(std::move(value));
        if (AcceptSymbol(",")) continue;
        SDW_RETURN_IF_ERROR(ExpectSymbol(")"));
        break;
      }
      stmt.rows.push_back(std::move(row));
      if (!AcceptSymbol(",")) break;
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseAnalyze() {
    SDW_ASSIGN_OR_RETURN(std::string table, ExpectIdent());
    return Statement(AnalyzeStmt{table});
  }

  Result<Statement> ParseVacuum() {
    SDW_ASSIGN_OR_RETURN(std::string table, ExpectIdent());
    return Statement(VacuumStmt{table});
  }

  Result<plan::ColumnName> ParseColumnName() {
    SDW_ASSIGN_OR_RETURN(std::string first, ExpectIdent());
    if (AcceptSymbol(".")) {
      SDW_ASSIGN_OR_RETURN(std::string second, ExpectIdent());
      return plan::ColumnName{first, second};
    }
    return plan::ColumnName{"", first};
  }

  Result<plan::SelectItem> ParseSelectItem() {
    plan::SelectItem item;
    // APPROXIMATE COUNT(DISTINCT col) — the HyperLogLog path.
    if (AcceptKeyword("APPROXIMATE")) {
      SDW_RETURN_IF_ERROR(ExpectKeyword("COUNT"));
      SDW_RETURN_IF_ERROR(ExpectSymbol("("));
      SDW_RETURN_IF_ERROR(ExpectKeyword("DISTINCT"));
      item.agg = plan::LogicalAggFn::kApproxCountDistinct;
      SDW_ASSIGN_OR_RETURN(item.column, ParseColumnName());
      SDW_RETURN_IF_ERROR(ExpectSymbol(")"));
      if (AcceptKeyword("AS")) {
        SDW_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
      }
      return item;
    }
    auto agg_keyword = [&]() -> plan::LogicalAggFn {
      if (AcceptKeyword("COUNT")) return plan::LogicalAggFn::kCount;
      if (AcceptKeyword("SUM")) return plan::LogicalAggFn::kSum;
      if (AcceptKeyword("MIN")) return plan::LogicalAggFn::kMin;
      if (AcceptKeyword("MAX")) return plan::LogicalAggFn::kMax;
      if (AcceptKeyword("AVG")) return plan::LogicalAggFn::kAvg;
      return plan::LogicalAggFn::kNone;
    };
    const plan::LogicalAggFn agg = agg_keyword();
    if (agg != plan::LogicalAggFn::kNone) {
      SDW_RETURN_IF_ERROR(ExpectSymbol("("));
      if (Peek().IsKeyword("DISTINCT")) {
        return Status::NotSupported(
            "exact COUNT(DISTINCT) is not implemented; use APPROXIMATE "
            "COUNT(DISTINCT col)");
      }
      if (agg == plan::LogicalAggFn::kCount && AcceptSymbol("*")) {
        item.agg = plan::LogicalAggFn::kCountStar;
      } else {
        item.agg = agg;
        SDW_ASSIGN_OR_RETURN(item.column, ParseColumnName());
      }
      SDW_RETURN_IF_ERROR(ExpectSymbol(")"));
    } else {
      SDW_ASSIGN_OR_RETURN(item.column, ParseColumnName());
    }
    if (AcceptKeyword("AS")) {
      SDW_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
    }
    return item;
  }

  Result<plan::LogicalCmp> ParseCmpOp() {
    if (AcceptSymbol("=")) return plan::LogicalCmp::kEq;
    if (AcceptSymbol("<>")) return plan::LogicalCmp::kNe;
    if (AcceptSymbol("<=")) return plan::LogicalCmp::kLe;
    if (AcceptSymbol("<")) return plan::LogicalCmp::kLt;
    if (AcceptSymbol(">=")) return plan::LogicalCmp::kGe;
    if (AcceptSymbol(">")) return plan::LogicalCmp::kGt;
    return Status::InvalidArgument("expected a comparison near '" +
                                   Peek().text + "'");
  }

  Result<SelectStmt> ParseSelect() {
    SelectStmt stmt;
    plan::LogicalQuery& q = stmt.query;
    if (AcceptSymbol("*")) {
      q.select_star = true;  // expanded by the planner (needs the schema)
    } else {
      while (true) {
        SDW_ASSIGN_OR_RETURN(plan::SelectItem item, ParseSelectItem());
        q.select.push_back(std::move(item));
        if (!AcceptSymbol(",")) break;
      }
    }
    SDW_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    SDW_ASSIGN_OR_RETURN(q.from_table, ExpectIdent());
    if (AcceptKeyword("JOIN")) {
      SDW_ASSIGN_OR_RETURN(std::string join_table, ExpectIdent());
      q.join_table = join_table;
      SDW_RETURN_IF_ERROR(ExpectKeyword("ON"));
      SDW_ASSIGN_OR_RETURN(q.join_left, ParseColumnName());
      SDW_RETURN_IF_ERROR(ExpectSymbol("="));
      SDW_ASSIGN_OR_RETURN(q.join_right, ParseColumnName());
    }
    if (AcceptKeyword("WHERE")) {
      while (true) {
        plan::Selection sel;
        SDW_ASSIGN_OR_RETURN(sel.column, ParseColumnName());
        if (AcceptKeyword("BETWEEN")) {
          sel.kind = plan::Selection::Kind::kBetween;
          SDW_ASSIGN_OR_RETURN(sel.literal, ParseLiteral());
          SDW_RETURN_IF_ERROR(ExpectKeyword("AND"));
          SDW_ASSIGN_OR_RETURN(sel.literal2, ParseLiteral());
        } else if (AcceptKeyword("IN")) {
          sel.kind = plan::Selection::Kind::kIn;
          SDW_RETURN_IF_ERROR(ExpectSymbol("("));
          while (true) {
            SDW_ASSIGN_OR_RETURN(Datum v, ParseLiteral());
            sel.in_list.push_back(std::move(v));
            if (AcceptSymbol(",")) continue;
            SDW_RETURN_IF_ERROR(ExpectSymbol(")"));
            break;
          }
        } else if (AcceptKeyword("LIKE")) {
          if (Peek().type != TokenType::kString) {
            return Error("expected a pattern string after LIKE");
          }
          std::string pattern = Take().text;
          // Only the prefix fast path ('abc%') is supported: a single
          // trailing '%', no other wildcards.
          if (pattern.empty() || pattern.back() != '%' ||
              pattern.find_first_of("%_") != pattern.size() - 1) {
            return Status::NotSupported(
                "only prefix patterns ('abc%') are supported for LIKE");
          }
          sel.kind = plan::Selection::Kind::kLikePrefix;
          sel.like_prefix = pattern.substr(0, pattern.size() - 1);
        } else {
          SDW_ASSIGN_OR_RETURN(sel.op, ParseCmpOp());
          SDW_ASSIGN_OR_RETURN(sel.literal, ParseLiteral());
        }
        q.where.push_back(std::move(sel));
        if (!AcceptKeyword("AND")) break;
      }
    }
    if (AcceptKeyword("GROUP")) {
      SDW_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        SDW_ASSIGN_OR_RETURN(plan::ColumnName col, ParseColumnName());
        q.group_by.push_back(std::move(col));
        if (!AcceptSymbol(",")) break;
      }
    }
    if (AcceptKeyword("ORDER")) {
      SDW_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        plan::OrderItem order;
        if (Peek().type == TokenType::kInteger) {
          // 1-based select position.
          order.select_index =
              static_cast<int>(std::strtoll(Take().text.c_str(), nullptr, 10)) -
              1;
        } else if (q.select_star) {
          // No select list to resolve against yet; the planner resolves
          // the name after star expansion.
          SDW_ASSIGN_OR_RETURN(order.column, ParseColumnName());
          order.by_name = true;
        } else {
          SDW_ASSIGN_OR_RETURN(plan::ColumnName col, ParseColumnName());
          // Match by alias first, then by column name.
          int index = -1;
          for (size_t i = 0; i < q.select.size(); ++i) {
            if ((!q.select[i].alias.empty() &&
                 q.select[i].alias == col.column) ||
                (q.select[i].column.column == col.column &&
                 (col.table.empty() ||
                  q.select[i].column.table == col.table))) {
              index = static_cast<int>(i);
              break;
            }
          }
          if (index < 0) {
            return Status::InvalidArgument(
                "ORDER BY column '" + col.ToString() +
                "' is not in the select list");
          }
          order.select_index = index;
        }
        if (AcceptKeyword("DESC")) {
          order.descending = true;
        } else {
          (void)AcceptKeyword("ASC");
        }
        q.order_by.push_back(order);
        if (!AcceptSymbol(",")) break;
      }
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().type != TokenType::kInteger) {
        return Error("expected a row count after LIMIT");
      }
      q.limit = std::strtoull(Take().text.c_str(), nullptr, 10);
    }
    return stmt;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(const std::string& sql) {
  SDW_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace sdw::sql
