#ifndef SDW_SQL_LEXER_H_
#define SDW_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace sdw::sql {

enum class TokenType {
  kKeyword,   // normalized to upper case
  kIdent,     // normalized to lower case
  kInteger,
  kFloat,
  kString,    // quoted literal, quotes stripped
  kSymbol,    // ( ) , . ; * = <> < <= > >=
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;

  bool Is(TokenType t, const std::string& s) const {
    return type == t && text == s;
  }
  bool IsKeyword(const std::string& s) const {
    return Is(TokenType::kKeyword, s);
  }
  bool IsSymbol(const std::string& s) const {
    return Is(TokenType::kSymbol, s);
  }
};

/// Tokenizes one SQL statement. Keywords are recognized from a fixed
/// list and upper-cased; other identifiers lower-cased (PostgreSQL
/// folding). Fails on unterminated strings or stray characters.
Result<std::vector<Token>> Lex(const std::string& sql);

}  // namespace sdw::sql

#endif  // SDW_SQL_LEXER_H_
