#ifndef SDW_SQL_PARSER_H_
#define SDW_SQL_PARSER_H_

#include <string>
#include <variant>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "plan/logical.h"

namespace sdw::sql {

/// CREATE TABLE name (cols...) [DISTSTYLE ...] [DISTKEY(c)]
/// [[COMPOUND|INTERLEAVED] SORTKEY(c, ...)]
struct CreateTableStmt {
  TableSchema schema;
};

struct DropTableStmt {
  std::string table;
};

/// COPY table FROM 'uri' [FORMAT CSV|JSON] [COMPUPDATE ON|OFF]
struct CopyStmt {
  std::string table;
  std::string source_uri;
  enum class Format { kCsv, kJson } format = Format::kCsv;
  bool compupdate = true;
};

/// INSERT INTO table VALUES (...), (...)
struct InsertStmt {
  std::string table;
  std::vector<Row> rows;
};

/// SELECT ... (optionally EXPLAIN [ANALYZE]'d)
struct SelectStmt {
  plan::LogicalQuery query;
  bool explain = false;
  /// EXPLAIN ANALYZE: execute the query, then render the plan annotated
  /// with per-operator counters from the recorded trace.
  bool explain_analyze = false;
};

struct AnalyzeStmt {
  std::string table;
};

/// VACUUM table — merges per-COPY sorted runs back into one region.
struct VacuumStmt {
  std::string table;
};

/// BEGIN / COMMIT / ROLLBACK (single-session transactions: the leader
/// "coordinates serialization and state of transactions", §2.1).
struct TxnStmt {
  enum class Kind { kBegin, kCommit, kRollback } kind = Kind::kBegin;
};

using Statement = std::variant<CreateTableStmt, DropTableStmt, CopyStmt,
                               InsertStmt, SelectStmt, AnalyzeStmt,
                               VacuumStmt, TxnStmt>;

/// Parses exactly one SQL statement (a trailing ';' is allowed).
Result<Statement> ParseStatement(const std::string& sql);

}  // namespace sdw::sql

#endif  // SDW_SQL_PARSER_H_
