#ifndef SDW_CLUSTER_WLM_H_
#define SDW_CLUSTER_WLM_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "sim/engine.h"

namespace sdw::cluster {

/// Workload-management knobs. The slot count is the one genuinely
/// "dusty" engine knob the paper's philosophy leaves in place: a
/// default that works (5 concurrent queries), adjustable by the rare
/// customer who needs it (§4: resources must be "distributed across
/// many concurrent queries").
struct WlmConfig {
  /// Queries executing concurrently; the rest queue FIFO.
  int concurrency_slots = 5;
  /// Memory divides evenly across slots, so more slots slow each query
  /// down: effective service time = base * (1 + penalty * (slots - 1)).
  /// This models the spill/partition cost of smaller per-slot memory.
  double per_slot_memory_penalty = 0.04;
  /// Real seconds a statement may wait in the admission queue before
  /// it is cancelled with DeadlineExceeded; <= 0 waits forever.
  double queue_timeout_seconds = 60.0;
  /// Completed-statement reports kept (ring buffer — stl_wlm must not
  /// grow without bound across long runs).
  size_t max_report_history = 1024;
};

/// Returns `config` with out-of-range knobs clamped to workable values
/// (a misconfigured warehouse degrades to a 1-slot queue instead of
/// crashing the endpoint).
WlmConfig SanitizeWlmConfig(WlmConfig config);

/// Live admission control: the thread-safe front door of a warehouse.
/// Concurrent callers block in Admit() until one of the configured
/// slots frees up; beyond the slot count they queue strictly FIFO, and
/// a queued caller whose timeout elapses is cancelled with
/// DeadlineExceeded. Completed statements are recorded in a bounded
/// ring buffer surfaced through the stl_wlm system table.
class AdmissionController {
 public:
  explicit AdmissionController(WlmConfig config);

  /// RAII occupancy of one slot: releasing is destruction. Move-only.
  class Slot {
   public:
    Slot() = default;
    Slot(Slot&& other) noexcept { *this = std::move(other); }
    Slot& operator=(Slot&& other) noexcept {
      if (this != &other) {
        ReleaseNow();
        controller_ = other.controller_;
        queued_seconds_ = other.queued_seconds_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    ~Slot() { ReleaseNow(); }

    /// Real seconds this statement waited before admission.
    double queued_seconds() const { return queued_seconds_; }

   private:
    friend class AdmissionController;
    void ReleaseNow() {
      if (controller_ != nullptr) controller_->Release();
      controller_ = nullptr;
    }
    AdmissionController* controller_ = nullptr;
    double queued_seconds_ = 0;
  };

  /// Blocks until a slot is free and this caller is at the head of the
  /// FIFO queue, or until the queue timeout elapses (DeadlineExceeded).
  Result<Slot> Admit() SDW_EXCLUDES(mu_);

  /// One row of stl_wlm. `state` is "run" (executed), "error"
  /// (admitted but failed), "timeout" (cancelled in the queue) or
  /// "result_cache" (served from the result cache, no slot occupied).
  struct Report {
    uint64_t seq = 0;  // assigned by Record, monotonically increasing
    int session_id = 0;
    std::string state;
    std::string statement;
    double queued_seconds = 0;
    double exec_seconds = 0;
  };

  /// Appends a completed-statement report to the ring buffer (assigns
  /// `seq`; the oldest rows fall off past max_report_history).
  void Record(Report report) SDW_EXCLUDES(mu_);

  /// Snapshot of the report ring, oldest first.
  std::vector<Report> reports() const SDW_EXCLUDES(mu_);

  /// Statements currently holding a slot / waiting in the queue.
  int running() const SDW_EXCLUDES(mu_);
  size_t queued() const SDW_EXCLUDES(mu_);
  /// High-water mark of concurrently running statements — the bench's
  /// proof that the slot limit binds.
  int max_in_flight() const SDW_EXCLUDES(mu_);
  /// Statements admitted / cancelled in the queue since construction.
  uint64_t admitted() const SDW_EXCLUDES(mu_);
  uint64_t timeouts() const SDW_EXCLUDES(mu_);

  const WlmConfig& config() const { return config_; }

 private:
  void Release() SDW_EXCLUDES(mu_);

  const WlmConfig config_;
  mutable common::Mutex mu_{common::LockRank::kWlmAdmission};
  common::CondVar slot_free_;
  uint64_t next_ticket_ SDW_GUARDED_BY(mu_) = 0;
  std::deque<uint64_t> queue_ SDW_GUARDED_BY(mu_);
  int running_ SDW_GUARDED_BY(mu_) = 0;
  int max_in_flight_ SDW_GUARDED_BY(mu_) = 0;
  uint64_t admitted_ SDW_GUARDED_BY(mu_) = 0;
  uint64_t timeouts_ SDW_GUARDED_BY(mu_) = 0;
  uint64_t next_seq_ SDW_GUARDED_BY(mu_) = 0;
  std::deque<Report> reports_ SDW_GUARDED_BY(mu_);
};

/// Admission control for concurrent queries, simulated on the
/// discrete-event engine. Used by tests and the WLM ablation bench to
/// show the throughput/latency tradeoff behind the default.
class WorkloadManager {
 public:
  WorkloadManager(sim::Engine* engine, WlmConfig config);

  struct QueryReport {
    double submitted_at = 0;
    double queued_seconds = 0;
    double exec_seconds = 0;
    double finished_at = 0;
  };

  /// Submits a query whose un-contended execution takes `service_seconds`.
  /// `done` fires (on the sim clock) when it completes.
  void Submit(double service_seconds,
              std::function<void(const QueryReport&)> done = nullptr);

  /// Queries currently executing / waiting.
  int running() const { return running_; }
  size_t queued() const { return queue_.size(); }

  /// The most recent completed-query reports, in completion order
  /// (bounded by WlmConfig::max_report_history).
  const std::deque<QueryReport>& reports() const { return reports_; }

 private:
  void Admit();

  struct Pending {
    double service_seconds = 0;
    double submitted_at = 0;
    std::function<void(const QueryReport&)> done;
  };

  sim::Engine* engine_;
  WlmConfig config_;
  int running_ = 0;
  std::vector<Pending> queue_;
  std::deque<QueryReport> reports_;
};

}  // namespace sdw::cluster

#endif  // SDW_CLUSTER_WLM_H_
