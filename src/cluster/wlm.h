#ifndef SDW_CLUSTER_WLM_H_
#define SDW_CLUSTER_WLM_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "sim/engine.h"

namespace sdw::cluster {

/// Workload-management knobs. The slot count is the one genuinely
/// "dusty" engine knob the paper's philosophy leaves in place: a
/// default that works (5 concurrent queries), adjustable by the rare
/// customer who needs it (§4: resources must be "distributed across
/// many concurrent queries").
struct WlmConfig {
  /// Queries executing concurrently; the rest queue FIFO.
  int concurrency_slots = 5;
  /// Memory divides evenly across slots, so more slots slow each query
  /// down: effective service time = base * (1 + penalty * (slots - 1)).
  /// This models the spill/partition cost of smaller per-slot memory.
  double per_slot_memory_penalty = 0.04;
};

/// Admission control for concurrent queries, simulated on the
/// discrete-event engine. Used by tests and the WLM ablation bench to
/// show the throughput/latency tradeoff behind the default.
class WorkloadManager {
 public:
  WorkloadManager(sim::Engine* engine, WlmConfig config);

  struct QueryReport {
    double submitted_at = 0;
    double queued_seconds = 0;
    double exec_seconds = 0;
    double finished_at = 0;
  };

  /// Submits a query whose un-contended execution takes `service_seconds`.
  /// `done` fires (on the sim clock) when it completes.
  void Submit(double service_seconds,
              std::function<void(const QueryReport&)> done = nullptr);

  /// Queries currently executing / waiting.
  int running() const { return running_; }
  size_t queued() const { return queue_.size(); }

  /// All completed-query reports, in completion order.
  const std::vector<QueryReport>& reports() const { return reports_; }

 private:
  void Admit();

  struct Pending {
    double service_seconds = 0;
    double submitted_at = 0;
    std::function<void(const QueryReport&)> done;
  };

  sim::Engine* engine_;
  WlmConfig config_;
  int running_ = 0;
  std::vector<Pending> queue_;
  std::vector<QueryReport> reports_;
};

}  // namespace sdw::cluster

#endif  // SDW_CLUSTER_WLM_H_
