#ifndef SDW_CLUSTER_WLM_H_
#define SDW_CLUSTER_WLM_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "sim/engine.h"
#include "sim/stopwatch.h"

namespace sdw::cluster {

/// One named WLM queue: a slice of the warehouse's concurrency slots
/// plus the classifier rules that route statements into it. Queues are
/// matched in declaration order (DESIGN.md §4k).
struct WlmQueueConfig {
  std::string name = "default";
  /// Share of WlmConfig::concurrency_slots owned by this queue.
  int slots = 1;
  /// Classifier rules: a statement lands here when its session's user
  /// group, or its query class ("select", "copy", "insert", "vacuum",
  /// "ddl"), matches. Query-class rules beat user-group rules.
  std::vector<std::string> user_groups;
  std::vector<std::string> query_classes;
  /// When a waiter's queue timeout elapses here, re-enqueue it at the
  /// tail of the named queue instead of cancelling. Empty cancels with
  /// DeadlineExceeded (the pre-multi-queue behavior).
  std::string hop_on_timeout;
  /// Per-queue wait bound; <= 0 inherits WlmConfig::queue_timeout_seconds.
  double queue_timeout_seconds = 0;
};

/// Workload-management knobs. The slot count is the one genuinely
/// "dusty" engine knob the paper's philosophy leaves in place: a
/// default that works (5 concurrent queries), adjustable by the rare
/// customer who needs it (§4: resources must be "distributed across
/// many concurrent queries").
struct WlmConfig {
  /// Queries executing concurrently across all named queues; the rest
  /// queue FIFO per queue.
  int concurrency_slots = 5;
  /// Memory divides evenly across slots, so more slots slow each query
  /// down: effective service time = base * (1 + penalty * (slots - 1)).
  /// This models the spill/partition cost of smaller per-slot memory.
  double per_slot_memory_penalty = 0.04;
  /// Real seconds a statement may wait in one queue before it hops (if
  /// the queue names a hop target) or is cancelled with
  /// DeadlineExceeded; <= 0 waits forever.
  double queue_timeout_seconds = 60.0;
  /// Completed-statement reports kept (ring buffer — stl_wlm must not
  /// grow without bound across long runs).
  size_t max_report_history = 1024;
  /// Named queues sharing concurrency_slots. Empty keeps the classic
  /// single "default" queue owning every slot. SanitizeWlmConfig
  /// guarantees a catch-all "default" queue exists and that the
  /// per-queue shares sum to <= concurrency_slots.
  std::vector<WlmQueueConfig> queues;
  /// Short-query acceleration: statements whose cost-model estimate is
  /// at most sqa_max_estimated_seconds are admitted through a dedicated
  /// fast lane ("sqa", sqa_slots wide, in addition to
  /// concurrency_slots) so dashboard queries never wait behind ETL.
  bool enable_sqa = false;
  int sqa_slots = 1;
  double sqa_max_estimated_seconds = 0.25;
  /// A short-lane statement still executing after this many real
  /// seconds was misestimated: its slot accounting demotes to its
  /// classified home queue (oversubscribing it rather than blocking)
  /// so the fast lane frees for genuinely short queries.
  double sqa_demote_exec_seconds = 1.0;
};

/// Returns `config` with out-of-range knobs clamped to workable values
/// (a misconfigured warehouse degrades to a 1-slot queue instead of
/// crashing the endpoint). Queue invariants enforced: every share
/// clamps to >= 1; a catch-all "default" queue is appended when the
/// list is non-empty but names none; shares summing past
/// concurrency_slots grow the total (never silently starve a named
/// queue); self- or dangling hop targets are cleared.
WlmConfig SanitizeWlmConfig(WlmConfig config);

/// Everything the classifier and the short-query fast lane need to
/// route one statement. The zero value (unknown group/class, negative
/// estimate) routes to the default queue with no SQA eligibility —
/// exactly the classic single-queue behavior.
struct AdmitRequest {
  int session_id = 0;
  std::string user_group;
  /// "select", "copy", "insert", "vacuum", "ddl" — derived from the
  /// statement kind by the warehouse front door.
  std::string query_class;
  /// Cost-model estimate of execution seconds; < 0 means unknown and
  /// is never SQA-eligible.
  double estimated_seconds = -1;
  std::string statement;
};

/// Live admission control: the thread-safe front door of a warehouse.
/// Statements are classified into named queues (query-class rules
/// first, then user-group rules, then the "default" queue); each queue
/// admits strictly FIFO within its slot share. A queued caller whose
/// per-queue timeout elapses hops to the queue's hop target (tail of
/// the target's FIFO, accrued wait preserved) or, with no target, is
/// cancelled with DeadlineExceeded. Short-query acceleration routes
/// cheap statements through a dedicated fast lane and demotes
/// misestimated overstayers back to their home queue. Completed
/// statements are recorded in a bounded ring buffer surfaced through
/// the stl_wlm system table.
class AdmissionController {
 public:
  explicit AdmissionController(WlmConfig config);

  /// RAII occupancy of one slot: releasing is destruction. Move-only.
  class Slot {
   public:
    Slot() = default;
    Slot(Slot&& other) noexcept { *this = std::move(other); }
    Slot& operator=(Slot&& other) noexcept {
      if (this != &other) {
        ReleaseNow();
        controller_ = other.controller_;
        ticket_ = other.ticket_;
        queued_seconds_ = other.queued_seconds_;
        queue_ = std::move(other.queue_);
        hops_ = other.hops_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    ~Slot() { ReleaseNow(); }

    /// Real seconds this statement waited before admission, summed
    /// across every queue it visited.
    double queued_seconds() const { return queued_seconds_; }
    /// Queue that finally admitted it ("sqa" for the fast lane).
    const std::string& queue() const { return queue_; }
    /// Timeout hops endured before admission.
    int hops() const { return hops_; }

   private:
    friend class AdmissionController;
    void ReleaseNow() {
      if (controller_ != nullptr) controller_->Release(ticket_);
      controller_ = nullptr;
    }
    AdmissionController* controller_ = nullptr;
    uint64_t ticket_ = 0;
    double queued_seconds_ = 0;
    std::string queue_;
    int hops_ = 0;
  };

  /// Classic front door: default request (default queue, no SQA).
  Result<Slot> Admit() SDW_EXCLUDES(mu_);

  /// One row of stl_wlm. `state` is "run" (executed), "error"
  /// (admitted but failed), "timeout" (cancelled in the queue) or
  /// "result_cache" (served from the result cache, no slot occupied).
  struct Report {
    uint64_t seq = 0;  // assigned by Record, monotonically increasing
    int session_id = 0;
    std::string state;
    /// Queue the statement was finally admitted from ("sqa" for the
    /// fast lane, "none" when no slot was occupied).
    std::string queue;
    std::string statement;
    double queued_seconds = 0;
    double exec_seconds = 0;
    /// Timeout hops endured while queued.
    int hops = 0;
  };

  /// Blocks until this caller reaches the head of its classified
  /// queue's FIFO with a slot free, hopping queues on timeout where
  /// configured. On cancellation, `timeout_report` (when non-null) is
  /// filled with the accrued wait across every queue visited — hopping
  /// must never launder queued_seconds out of stl_wlm.
  Result<Slot> Admit(const AdmitRequest& request,
                     Report* timeout_report = nullptr) SDW_EXCLUDES(mu_);

  /// Appends a completed-statement report to the ring buffer (assigns
  /// `seq`; the oldest rows fall off past max_report_history).
  void Record(Report report) SDW_EXCLUDES(mu_);

  /// Snapshot of the report ring, oldest first.
  std::vector<Report> reports() const SDW_EXCLUDES(mu_);

  /// Statements currently holding a slot / waiting, over all queues.
  int running() const SDW_EXCLUDES(mu_);
  size_t queued() const SDW_EXCLUDES(mu_);
  /// High-water mark of concurrently running statements — the bench's
  /// proof that the slot limit binds.
  int max_in_flight() const SDW_EXCLUDES(mu_);
  /// Statements admitted / cancelled in the queue since construction.
  uint64_t admitted() const SDW_EXCLUDES(mu_);
  uint64_t timeouts() const SDW_EXCLUDES(mu_);
  /// Timeout hops taken / fast-lane overstayers demoted since
  /// construction.
  uint64_t hops() const SDW_EXCLUDES(mu_);
  uint64_t sqa_demotions() const SDW_EXCLUDES(mu_);

  /// Point-in-time occupancy of one queue, for stv_gauge_history.
  struct QueueStats {
    std::string name;
    int slots = 0;
    int running = 0;
    size_t queued = 0;
    int max_in_flight = 0;
    uint64_t admitted = 0;
    uint64_t timeouts = 0;
    uint64_t hops_out = 0;
  };
  /// One entry per configured queue in declaration order, the "sqa"
  /// fast lane last when enabled.
  std::vector<QueueStats> queue_stats() const SDW_EXCLUDES(mu_);

  const WlmConfig& config() const { return config_; }

 private:
  struct QueueState {
    WlmQueueConfig config;
    std::deque<uint64_t> fifo;
    int running = 0;
    int max_in_flight = 0;
    uint64_t admitted = 0;
    uint64_t timeouts = 0;
    uint64_t hops_out = 0;
  };
  /// Slot accounting for an admitted statement; `queue` changes when a
  /// fast-lane overstayer demotes to `home`.
  struct RunningEntry {
    int queue = 0;
    int home = 0;
    sim::Stopwatch exec_timer;
  };

  void Release(uint64_t ticket) SDW_EXCLUDES(mu_);
  int ClassifyLocked(const AdmitRequest& request) const SDW_REQUIRES(mu_);
  int HopTargetLocked(int queue_index, int home) const SDW_REQUIRES(mu_);
  double QueueTimeoutLocked(int queue_index) const SDW_REQUIRES(mu_);
  void DemoteOverstayersLocked() SDW_REQUIRES(mu_);

  const WlmConfig config_;
  mutable common::Mutex mu_{common::LockRank::kWlmAdmission};
  common::CondVar slot_free_;
  /// Index of the "sqa" fast lane in queues_, -1 when SQA is off. Set
  /// once in the constructor, immutable after.
  int sqa_index_ = -1;
  uint64_t next_ticket_ SDW_GUARDED_BY(mu_) = 0;
  std::vector<QueueState> queues_ SDW_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, RunningEntry> running_entries_
      SDW_GUARDED_BY(mu_);
  int running_ SDW_GUARDED_BY(mu_) = 0;
  int max_in_flight_ SDW_GUARDED_BY(mu_) = 0;
  uint64_t admitted_ SDW_GUARDED_BY(mu_) = 0;
  uint64_t timeouts_ SDW_GUARDED_BY(mu_) = 0;
  uint64_t hops_ SDW_GUARDED_BY(mu_) = 0;
  uint64_t sqa_demotions_ SDW_GUARDED_BY(mu_) = 0;
  uint64_t next_seq_ SDW_GUARDED_BY(mu_) = 0;
  std::deque<Report> reports_ SDW_GUARDED_BY(mu_);
};

/// Admission control for concurrent queries, simulated on the
/// discrete-event engine. Used by tests and the WLM ablation bench to
/// show the throughput/latency tradeoff behind the default.
class WorkloadManager {
 public:
  WorkloadManager(sim::Engine* engine, WlmConfig config);

  struct QueryReport {
    double submitted_at = 0;
    double queued_seconds = 0;
    double exec_seconds = 0;
    double finished_at = 0;
  };

  /// Submits a query whose un-contended execution takes `service_seconds`.
  /// `done` fires (on the sim clock) when it completes.
  void Submit(double service_seconds,
              std::function<void(const QueryReport&)> done = nullptr);

  /// Queries currently executing / waiting.
  int running() const { return running_; }
  size_t queued() const { return queue_.size(); }

  /// The most recent completed-query reports, in completion order
  /// (bounded by WlmConfig::max_report_history).
  const std::deque<QueryReport>& reports() const { return reports_; }

 private:
  void Admit();

  struct Pending {
    double service_seconds = 0;
    double submitted_at = 0;
    std::function<void(const QueryReport&)> done;
  };

  sim::Engine* engine_;
  WlmConfig config_;
  int running_ = 0;
  std::vector<Pending> queue_;
  std::deque<QueryReport> reports_;
};

}  // namespace sdw::cluster

#endif  // SDW_CLUSTER_WLM_H_
