#include "cluster/cluster.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "zorder/zorder.h"

namespace sdw::cluster {

uint64_t EstimateBytes(const std::vector<ColumnVector>& columns) {
  uint64_t total = 0;
  for (const auto& col : columns) {
    if (col.type() == TypeId::kString) {
      for (const auto& s : col.strings()) total += s.size() + 4;
    } else {
      total += col.size() * 8;
    }
  }
  return total;
}

ComputeNode::ComputeNode(int node_id, int num_slices,
                         storage::StorageOptions options)
    : node_id_(node_id), options_(options), slices_(num_slices) {}

Status ComputeNode::CreateShards(const TableSchema& schema) {
  common::MutexLock lock(mu_);
  for (auto& slice : slices_) {
    if (slice.count(schema.name())) {
      return Status::AlreadyExists("shard exists for " + schema.name());
    }
    slice[schema.name()] =
        std::make_shared<storage::TableShard>(schema, options_, &store_);
  }
  return Status::OK();
}

Status ComputeNode::DropShards(
    const std::string& table,
    std::vector<std::shared_ptr<storage::TableShard>>* removed) {
  common::MutexLock lock(mu_);
  for (auto& slice : slices_) {
    auto it = slice.find(table);
    if (it == slice.end()) continue;
    if (removed != nullptr) removed->push_back(std::move(it->second));
    slice.erase(it);
  }
  return Status::OK();
}

Result<storage::TableShard*> ComputeNode::shard(int slice,
                                                const std::string& table) {
  SDW_ASSIGN_OR_RETURN(std::shared_ptr<storage::TableShard> ref,
                       shard_ref(slice, table));
  return ref.get();
}

Result<std::shared_ptr<storage::TableShard>> ComputeNode::shard_ref(
    int slice, const std::string& table) {
  if (slice < 0 || static_cast<size_t>(slice) >= slices_.size()) {
    return Status::InvalidArgument("bad slice index");
  }
  common::MutexLock lock(mu_);
  auto it = slices_[slice].find(table);
  if (it == slices_[slice].end()) {
    return Status::NotFound("no shard for table '" + table + "'");
  }
  return it->second;
}

const storage::ShardRef* ReadSnapshot::Find(const std::string& table,
                                            int slice) const {
  auto it = tables.find(table);
  if (it == tables.end()) return nullptr;
  if (slice < 0 || static_cast<size_t>(slice) >= it->second.size()) {
    return nullptr;
  }
  return &it->second[slice];
}

StagedWrite::~StagedWrite() {
  if (!committed_ && cluster_ != nullptr) cluster_->AbortStaged(this);
}

StagedWrite::Pending* StagedWrite::Find(const storage::TableShard* shard) {
  for (Pending& p : pending_) {
    if (p.shard.get() == shard) return &p;
  }
  return nullptr;
}

Cluster::Cluster(ClusterConfig config)
    : config_(config),
      node_read_failures_(static_cast<size_t>(config.num_nodes)) {
  SDW_CHECK(config.num_nodes >= 1);
  SDW_CHECK(config.slices_per_node >= 1);
  for (int n = 0; n < config.num_nodes; ++n) {
    nodes_.push_back(std::make_unique<ComputeNode>(
        n, config.slices_per_node, config.storage));
  }
  int threads = config.exec_pool_threads;
  if (threads < 0) {
    const int hw =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
    threads = std::min(total_slices(), hw);
  }
  pool_ = std::make_unique<common::ThreadPool>(threads);

  if (config_.replicate && num_nodes() >= 2) {
    std::vector<storage::BlockStore*> stores;
    stores.reserve(nodes_.size());
    for (auto& node : nodes_) stores.push_back(node->store());
    replication_ = std::make_unique<replication::ReplicationManager>(
        stores, config_.replication, config_.replication_seed);
    // Every committed Put gains a synchronous secondary copy ("each
    // data block is synchronously written to both its primary slice as
    // well as to at least one secondary on a separate node", §2.1).
    for (int n = 0; n < num_nodes(); ++n) {
      nodes_[n]->store()->set_put_observer(
          [this, n](storage::BlockId id, const Bytes& stored) {
            Status status = replication_->Replicate(n, id, stored);
            if (!status.ok()) {
              SDW_LOG(Warning) << "replication of block " << id
                               << " failed: " << status;
            }
          });
    }
    WireReadPath();
  }
}

void Cluster::WireReadPath() {
  bool has_page_fault;
  {
    common::MutexLock lock(mu_);
    has_page_fault = static_cast<bool>(page_fault_);
  }
  if (!replication_ && !has_page_fault) return;
  for (int n = 0; n < num_nodes(); ++n) {
    nodes_[n]->store()->set_fault_handler(
        [this, n](storage::BlockId id) { return FaultRead(n, id); });
  }
}

void Cluster::set_page_fault_handler(
    storage::BlockStore::FaultHandler handler) {
  {
    common::MutexLock lock(mu_);
    page_fault_ = std::move(handler);
  }
  WireReadPath();
}

Result<Bytes> Cluster::FaultRead(int node, storage::BlockId id) {
  // Masking order: secondary replica first, then the S3 page-fault
  // path. Only replication-tracked blocks strike the node's health
  // counter — a cold read after a streaming restore is not a failure.
  if (replication_ && replication_->HasPlacement(id)) {
    node_read_failures_[node].fetch_add(1, std::memory_order_relaxed);
    auto replica = replication_->ReadReplicaExcluding(id, node);
    if (replica.ok()) {
      masked_reads_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter* masked =
          obs::Registry::Global().counter("sdw_cluster_masked_reads");
      masked->Add();
      if (obs::SpanCounters* span = obs::CurrentSpanCounters()) {
        ++span->masked_reads;
      }
      return replica;
    }
  }
  // Copy the handler out: it reaches S3 (its own locks) and must not
  // run under mu_.
  storage::BlockStore::FaultHandler page_fault;
  {
    common::MutexLock lock(mu_);
    page_fault = page_fault_;
  }
  if (page_fault) {
    auto paged = page_fault(id);
    if (paged.ok()) {
      s3_fault_reads_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter* s3_faults =
          obs::Registry::Global().counter("sdw_cluster_s3_fault_reads");
      s3_faults->Add();
      if (obs::SpanCounters* span = obs::CurrentSpanCounters()) {
        ++span->s3_fault_reads;
      }
    }
    return paged;
  }
  return Status::Unavailable("block " + std::to_string(id) +
                             " has no live replica and no backup path");
}

void Cluster::FailNode(int node) {
  SDW_CHECK(node >= 0 && node < num_nodes());
  if (replication_) {
    replication_->FailNode(node);
    return;
  }
  for (storage::BlockId id : nodes_[node]->store()->ListIds()) {
    nodes_[node]->store()->DropForTest(id);
  }
}

Result<storage::TableShard*> Cluster::shard(int global_slice,
                                            const std::string& table) {
  if (global_slice < 0 || global_slice >= total_slices()) {
    return Status::InvalidArgument("bad global slice");
  }
  return NodeOfSlice(global_slice)->shard(LocalSlice(global_slice), table);
}

Result<std::shared_ptr<storage::TableShard>> Cluster::shard_ref(
    int global_slice, const std::string& table) {
  if (global_slice < 0 || global_slice >= total_slices()) {
    return Status::InvalidArgument("bad global slice");
  }
  return NodeOfSlice(global_slice)->shard_ref(LocalSlice(global_slice), table);
}

Status Cluster::PinTables(const std::vector<std::string>& tables,
                          ReadSnapshot* out) {
  static obs::Counter* pinned_metric =
      obs::Registry::Global().counter("sdw_mvcc_snapshots_pinned");
  for (const std::string& table : tables) {
    if (out->tables.count(table) > 0) continue;
    std::vector<storage::ShardRef> refs;
    refs.reserve(total_slices());
    bool complete = true;
    for (int s = 0; s < total_slices(); ++s) {
      auto ref = shard_ref(s, table);
      if (!ref.ok()) {
        // Dropped (or never created): leave the table unpinned and let
        // the planner report it.
        complete = false;
        break;
      }
      storage::ShardRef pinned;
      pinned.shard = std::move(*ref);
      pinned.version = pinned.shard->Snapshot();
      refs.push_back(std::move(pinned));
    }
    if (complete) {
      out->tables[table] = std::move(refs);
      pinned_metric->Add();
    }
  }
  return Status::OK();
}

Status Cluster::CreateTable(const TableSchema& schema) {
  SDW_RETURN_IF_ERROR(catalog_.CreateTable(schema));
  for (auto& node : nodes_) {
    SDW_RETURN_IF_ERROR(node->CreateShards(schema));
  }
  return Status::OK();
}

Status Cluster::DropTable(const std::string& table) {
  SDW_RETURN_IF_ERROR(catalog_.DropTable(table));
  for (auto& node : nodes_) {
    std::vector<std::shared_ptr<storage::TableShard>> removed;
    SDW_RETURN_IF_ERROR(node->DropShards(table, &removed));
    common::MutexLock lock(mu_);
    for (auto& shard_sp : removed) {
      dropped_.push_back({std::move(shard_sp), node->store()});
    }
  }
  {
    // Forget the EVEN-placement cursor with the table: a re-created
    // table starts placing from slice 0, exactly like one arriving via
    // snapshot restore (manifests only capture live tables' cursors) —
    // keeps replayed history byte-identical to the original run.
    common::MutexLock lock(mu_);
    round_robin_.erase(table);
  }
  // Nothing pinned (the common case): the blocks go away right here,
  // keeping DROP's storage release prompt. Pinned shards stay parked
  // until a later sweep.
  CollectGarbage();
  return Status::OK();
}

Status Cluster::CommitStaged(StagedWrite* staged,
                             const std::function<Status(size_t)>& barrier) {
  size_t installed = 0;
  Status status = Status::OK();
  for (StagedWrite::Pending& p : staged->pending_) {
    status = p.shard->Install(p.base, p.next);
    if (!status.ok()) break;
    ++installed;
    if (barrier != nullptr) {
      status = barrier(installed);
      if (!status.ok()) break;
    }
  }
  // Heads installed before a failure are live — a reader may already
  // have pinned them — so the abort path must not discard their blocks.
  // Drop them from pending_ and let the destructor abort only the
  // never-installed suffix.
  staged->pending_.erase(
      staged->pending_.begin(),
      staged->pending_.begin() + static_cast<long>(installed));
  SDW_RETURN_IF_ERROR(status);
  staged->committed_ = true;
  return Status::OK();
}

void Cluster::AbortStaged(StagedWrite* staged) {
  for (StagedWrite::Pending& p : staged->pending_) {
    std::vector<storage::BlockId> removed =
        p.shard->DiscardPrepared(*p.base, *p.next);
    if (replication_) {
      for (storage::BlockId id : removed) replication_->Remove(id);
    }
  }
  staged->pending_.clear();
}

Cluster::GcStats Cluster::CollectGarbage() {
  static obs::Counter* deferred_metric =
      obs::Registry::Global().counter("sdw_mvcc_gc_deferred");
  GcStats stats;
  std::vector<storage::BlockId> reclaimed;

  // Retired versions of live shards (VACUUM rewrites, rollbacks).
  for (const std::string& table : catalog_.TableNames()) {
    for (int s = 0; s < total_slices(); ++s) {
      auto ref = shard_ref(s, table);
      if (!ref.ok()) continue;
      stats.versions_reclaimed += (*ref)->CollectGarbage(&reclaimed);
      stats.versions_deferred += (*ref)->retired_versions();
    }
  }

  // Dropped tables: a shard is reclaimable once nothing outside the
  // dropped list references it (use_count drops monotonically — new
  // refs only come from copying existing ones, and the maps no longer
  // hold one) and its own retired queue has drained.
  std::vector<DroppedShard> parked;
  {
    common::MutexLock lock(mu_);
    parked.swap(dropped_);
  }
  std::vector<DroppedShard> keep;
  for (DroppedShard& d : parked) {
    stats.versions_reclaimed += d.shard->CollectGarbage(&reclaimed);
    if (d.shard.use_count() == 1 && d.shard->retired_versions() == 0) {
      for (storage::BlockId id : d.shard->AllBlockIds()) {
        (void)d.store->Delete(id);
        reclaimed.push_back(id);
      }
      ++stats.dropped_shards_reclaimed;
    } else {
      stats.versions_deferred += d.shard->retired_versions();
      ++stats.dropped_shards_deferred;
      keep.push_back(std::move(d));
    }
  }
  if (!keep.empty()) {
    common::MutexLock lock(mu_);
    for (DroppedShard& d : keep) dropped_.push_back(std::move(d));
  }

  // Reclaimed blocks also lose their secondary copy + placement (else
  // vacuumed/dropped blocks leak on their replica nodes).
  if (replication_) {
    for (storage::BlockId id : reclaimed) replication_->Remove(id);
  }
  stats.blocks_reclaimed = reclaimed.size();
  if (stats.versions_deferred > 0 || stats.dropped_shards_deferred > 0) {
    deferred_metric->Add();
  }
  return stats;
}

uint64_t Cluster::PendingGarbage() {
  uint64_t pending = 0;
  for (const std::string& table : catalog_.TableNames()) {
    for (int s = 0; s < total_slices(); ++s) {
      auto ref = shard_ref(s, table);
      if (!ref.ok()) continue;
      pending += (*ref)->retired_versions();
    }
  }
  common::MutexLock lock(mu_);
  for (const DroppedShard& d : dropped_) {
    pending += 1 + d.shard->retired_versions();
  }
  return pending;
}

uint64_t Cluster::round_robin_cursor(const std::string& table) const {
  common::MutexLock lock(mu_);
  auto it = round_robin_.find(table);
  return it == round_robin_.end() ? 0 : it->second;
}

void Cluster::set_round_robin_cursor(const std::string& table,
                                     uint64_t cursor) {
  common::MutexLock lock(mu_);
  round_robin_[table] = cursor;
}

int Cluster::SliceForKey(const Datum& key) const {
  return static_cast<int>(key.Hash() % static_cast<uint64_t>(
                              num_nodes() * config_.slices_per_node));
}

namespace {

/// Applies a row permutation/selection to a set of parallel columns.
Result<std::vector<ColumnVector>> TakeRows(
    const std::vector<ColumnVector>& columns,
    const std::vector<uint64_t>& indices) {
  std::vector<ColumnVector> out;
  out.reserve(columns.size());
  for (const auto& col : columns) {
    ColumnVector taken(col.type());
    taken.Reserve(indices.size());
    for (uint64_t i : indices) {
      SDW_RETURN_IF_ERROR(taken.AppendRange(col, i, i + 1));
    }
    out.push_back(std::move(taken));
  }
  return out;
}

/// Sorts the slice-local run per the table's sort organization and
/// returns the row order. Compound keys sort lexicographically;
/// interleaved keys sort by the z-curve (§3.3).
Result<std::vector<uint64_t>> SortOrder(
    const TableSchema& schema, const std::vector<ColumnVector>& columns) {
  const size_t n = columns.empty() ? 0 : columns[0].size();
  std::vector<uint64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (schema.sort_style() == SortStyle::kNone || n == 0) return order;

  if (schema.sort_style() == SortStyle::kCompound) {
    std::stable_sort(order.begin(), order.end(), [&](uint64_t a, uint64_t b) {
      for (int key : schema.sort_keys()) {
        int cmp = columns[key].DatumAt(a).Compare(columns[key].DatumAt(b));
        if (cmp != 0) return cmp < 0;
      }
      return false;
    });
    return order;
  }

  // Interleaved: z-curve over the sort-key columns, calibrated from
  // this run's value ranges.
  std::vector<const ColumnVector*> key_columns;
  for (int key : schema.sort_keys()) key_columns.push_back(&columns[key]);
  SDW_ASSIGN_OR_RETURN(zorder::ZOrderMapper mapper,
                       zorder::BuildMapperFromColumns(key_columns));
  SDW_ASSIGN_OR_RETURN(std::vector<uint64_t> keys,
                       mapper.MapColumns(key_columns));
  std::stable_sort(order.begin(), order.end(),
                   [&](uint64_t a, uint64_t b) { return keys[a] < keys[b]; });
  return order;
}

}  // namespace

Status Cluster::InsertRows(const std::string& table,
                           const std::vector<ColumnVector>& columns,
                           StagedWrite* staged) {
  if (read_only_) {
    return Status::FailedPrecondition(
        "cluster is read-only (resize in progress)");
  }
  SDW_ASSIGN_OR_RETURN(TableSchema schema, catalog_.GetTable(table));
  if (columns.size() != schema.num_columns()) {
    return Status::InvalidArgument("column count mismatch");
  }
  const size_t n = columns.empty() ? 0 : columns[0].size();
  for (const auto& col : columns) {
    if (col.size() != n) return Status::InvalidArgument("ragged insert");
  }
  if (n == 0) return Status::OK();

  const int slices = total_slices();
  std::vector<std::vector<uint64_t>> per_slice(slices);

  // One insert at a time: the round-robin cursor and the shard appends
  // must advance together (writers are additionally serialized by the
  // warehouse's statement lock). Appends only ever write (store Put),
  // so nothing below re-enters FaultRead and wants mu_ back. COPY
  // distributes serially — only parsing fans out — so this serializes
  // nothing that was parallel.
  common::MutexLock lock(mu_);

  switch (schema.dist_style()) {
    case DistStyle::kEven: {
      uint64_t& rr = round_robin_[table];
      for (size_t i = 0; i < n; ++i) {
        per_slice[rr % slices].push_back(i);
        ++rr;
      }
      break;
    }
    case DistStyle::kKey: {
      const ColumnVector& key = columns[schema.dist_key()];
      for (size_t i = 0; i < n; ++i) {
        per_slice[SliceForKey(key.DatumAt(i))].push_back(i);
      }
      break;
    }
    case DistStyle::kAll: {
      // Every slice receives the full run. Copies to other nodes cross
      // the interconnect once per remote node.
      std::vector<uint64_t> all(n);
      std::iota(all.begin(), all.end(), 0);
      for (int s = 0; s < slices; ++s) per_slice[s] = all;
      AddNetworkBytes(EstimateBytes(columns) *
                      static_cast<uint64_t>(num_nodes() - 1));
      break;
    }
  }

  if (schema.dist_style() != DistStyle::kAll) {
    // Hash/round-robin distribution moves each row to its target node.
    // Approximate: a uniform (nodes-1)/nodes share of bytes is remote.
    if (num_nodes() > 1) {
      AddNetworkBytes(EstimateBytes(columns) *
                      static_cast<uint64_t>(num_nodes() - 1) /
                      static_cast<uint64_t>(num_nodes()));
    }
  }

  for (int s = 0; s < slices; ++s) {
    if (per_slice[s].empty()) continue;
    SDW_ASSIGN_OR_RETURN(std::vector<ColumnVector> slice_rows,
                         TakeRows(columns, per_slice[s]));
    SDW_ASSIGN_OR_RETURN(std::vector<uint64_t> order,
                         SortOrder(schema, slice_rows));
    bool already_sorted = true;
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i] != i) {
        already_sorted = false;
        break;
      }
    }
    if (!already_sorted) {
      SDW_ASSIGN_OR_RETURN(slice_rows, TakeRows(slice_rows, order));
    }
    SDW_ASSIGN_OR_RETURN(std::shared_ptr<storage::TableShard> shard_sp,
                         shard_ref(s, table));
    if (staged != nullptr) {
      // Chain this run onto whatever the statement already staged for
      // the shard; readers see nothing until CommitStaged.
      StagedWrite::Pending* pending = staged->Find(shard_sp.get());
      storage::ShardSnapshot base =
          pending != nullptr ? pending->next : shard_sp->Snapshot();
      SDW_ASSIGN_OR_RETURN(storage::ShardSnapshot next,
                           shard_sp->PrepareAppend(base, slice_rows));
      if (pending != nullptr) {
        pending->next = std::move(next);
      } else {
        staged->pending_.push_back(
            {std::move(shard_sp), std::move(base), std::move(next)});
      }
    } else {
      SDW_RETURN_IF_ERROR(shard_sp->Append(slice_rows));
    }
  }
  return Status::OK();
}

Status Cluster::Analyze(const std::string& table) {
  SDW_ASSIGN_OR_RETURN(TableSchema schema, catalog_.GetTable(table));
  TableStats stats;
  stats.columns.resize(schema.num_columns());
  std::vector<std::set<uint64_t>> hashes(schema.num_columns());
  const int slice_count =
      schema.dist_style() == DistStyle::kAll ? 1 : total_slices();
  for (int s = 0; s < slice_count; ++s) {
    SDW_ASSIGN_OR_RETURN(std::shared_ptr<storage::TableShard> shard_sp,
                         shard_ref(s, table));
    storage::ShardSnapshot version = shard_sp->Snapshot();
    stats.row_count += version->row_count;
    stats.total_bytes += version->encoded_bytes;
    std::vector<int> all_cols(schema.num_columns());
    std::iota(all_cols.begin(), all_cols.end(), 0);
    SDW_ASSIGN_OR_RETURN(std::vector<ColumnVector> data,
                         shard_sp->ReadAll(*version, all_cols));
    for (size_t c = 0; c < data.size(); ++c) {
      ColumnStats& cs = stats.columns[c];
      for (size_t i = 0; i < data[c].size(); ++i) {
        Datum v = data[c].DatumAt(i);
        if (v.is_null()) {
          ++cs.null_count;
          continue;
        }
        if (cs.min.is_null() || v < cs.min) cs.min = v;
        if (cs.max.is_null() || cs.max < v) cs.max = v;
        // NDV estimate via a capped hash set (sampled sketch).
        if (hashes[c].size() < 100000) hashes[c].insert(v.Hash());
      }
    }
  }
  for (size_t c = 0; c < hashes.size(); ++c) {
    stats.columns[c].distinct_estimate = hashes[c].size();
  }
  catalog_.UpdateStats(table, stats);
  return Status::OK();
}

Result<uint64_t> Cluster::Vacuum(const std::string& table,
                                 StagedWrite* staged) {
  if (read_only_) {
    return Status::FailedPrecondition("cluster is read-only");
  }
  SDW_ASSIGN_OR_RETURN(TableSchema schema, catalog_.GetTable(table));
  std::vector<int> all_cols(schema.num_columns());
  std::iota(all_cols.begin(), all_cols.end(), 0);
  uint64_t blocks_rewritten = 0;
  for (int s = 0; s < total_slices(); ++s) {
    SDW_ASSIGN_OR_RETURN(std::shared_ptr<storage::TableShard> shard_sp,
                         shard_ref(s, table));
    storage::ShardSnapshot base = shard_sp->Snapshot();
    if (base->row_count == 0) continue;
    // Read everything (as of `base`), re-sort as one run, and stage a
    // full replacement version. The old blocks become the retired
    // version's delete set at install time.
    SDW_ASSIGN_OR_RETURN(std::vector<ColumnVector> data,
                         shard_sp->ReadAll(*base, all_cols));
    SDW_ASSIGN_OR_RETURN(std::vector<uint64_t> order,
                         SortOrder(shard_sp->schema(), data));
    SDW_ASSIGN_OR_RETURN(data, TakeRows(data, order));
    SDW_ASSIGN_OR_RETURN(storage::ShardSnapshot next,
                         shard_sp->PrepareRewrite(base, data));
    for (const auto& chain : base->chains) {
      blocks_rewritten += chain.size();
    }
    if (staged != nullptr) {
      staged->pending_.push_back(
          {std::move(shard_sp), std::move(base), std::move(next)});
    } else {
      SDW_RETURN_IF_ERROR(shard_sp->Install(base, std::move(next)));
    }
  }
  // Unstaged VACUUM (direct cluster callers) reclaims eagerly so the
  // rewrite frees storage right away when nothing is pinned.
  if (staged == nullptr) CollectGarbage();
  return blocks_rewritten;
}

Result<uint64_t> Cluster::TotalRows(const std::string& table) {
  SDW_ASSIGN_OR_RETURN(TableSchema schema, catalog_.GetTable(table));
  uint64_t total = 0;
  const int slice_count =
      schema.dist_style() == DistStyle::kAll ? 1 : total_slices();
  for (int s = 0; s < slice_count; ++s) {
    SDW_ASSIGN_OR_RETURN(std::shared_ptr<storage::TableShard> shard_sp,
                         shard_ref(s, table));
    total += shard_sp->row_count();
  }
  return total;
}

uint64_t Cluster::TotalStoredBytes() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) {
    total += const_cast<ComputeNode&>(*node).store()->total_bytes();
  }
  return total;
}

Result<std::unique_ptr<Cluster>> Cluster::Resize(
    int new_num_nodes, ResizeStats* stats,
    const std::function<void(Cluster*)>& on_target_created) {
  if (new_num_nodes < 1) {
    return Status::InvalidArgument("resize target must have >= 1 node");
  }
  // 1. Provision the target cluster.
  ClusterConfig target_config = config_;
  target_config.num_nodes = new_num_nodes;
  auto target = std::make_unique<Cluster>(target_config);
  if (on_target_created) on_target_created(target.get());

  // 2. Source goes read-only; reads keep working (§3.1).
  set_read_only(true);

  // 3. Parallel node-to-node copy: every table's rows stream from
  //    source shards to the target's distribution.
  uint64_t bytes_moved = 0;
  for (const std::string& table : catalog_.TableNames()) {
    SDW_ASSIGN_OR_RETURN(TableSchema schema, catalog_.GetTable(table));
    SDW_RETURN_IF_ERROR(target->CreateTable(schema));
    std::vector<int> all_cols(schema.num_columns());
    std::iota(all_cols.begin(), all_cols.end(), 0);
    const int slice_count =
        schema.dist_style() == DistStyle::kAll ? 1 : total_slices();
    for (int s = 0; s < slice_count; ++s) {
      SDW_ASSIGN_OR_RETURN(std::shared_ptr<storage::TableShard> shard_sp,
                           shard_ref(s, table));
      storage::ShardSnapshot version = shard_sp->Snapshot();
      if (version->row_count == 0) continue;
      SDW_ASSIGN_OR_RETURN(std::vector<ColumnVector> data,
                           shard_sp->ReadAll(*version, all_cols));
      bytes_moved += EstimateBytes(data);
      SDW_RETURN_IF_ERROR(target->InsertRows(table, data));
    }
    catalog_.UpdateStats(table, catalog_.GetStats(table));
    target->catalog_.UpdateStats(table, catalog_.GetStats(table));
  }

  if (stats != nullptr) {
    stats->bytes_moved = bytes_moved;
    // The copy is node-parallel on both ends; the slower side bounds it.
    CostModel model;
    const int senders = num_nodes();
    const int receivers = new_num_nodes;
    stats->modeled_seconds =
        model.NetworkSeconds(bytes_moved, std::min(senders, receivers));
  }
  // 4. The control plane moves the SQL endpoint and decommissions the
  //    source; data-plane-side we just hand the target back.
  return target;
}

}  // namespace sdw::cluster
