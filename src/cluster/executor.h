#ifndef SDW_CLUSTER_EXECUTOR_H_
#define SDW_CLUSTER_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/cost_model.h"
#include "exec/batch.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "plan/physical.h"

namespace sdw::cluster {

/// Which engine runs the per-slice pipelines (the A5 experiment's two
/// arms). kCompiled is the production path: type-specialized vectorized
/// segments, paying a fixed per-query "compilation" latency. kInterpreted
/// is the tuple-at-a-time general-purpose executor.
enum class ExecutionMode { kCompiled, kInterpreted };

struct ExecOptions {
  ExecutionMode mode = ExecutionMode::kCompiled;
  /// Modeled fixed cost of plan->C++->binary compilation at the leader
  /// (only charged in kCompiled mode). Defaults to 0 so tests measure
  /// pure execution; benches set it from the CostModel.
  double compile_seconds = 0.0;
  /// Per-slice parallelism: -1 uses the cluster's shared pool (sized
  /// from topology), 0 forces serial inline execution (the benches'
  /// baseline arm), >0 gives this executor a private pool of that many
  /// workers. Serial and parallel runs produce identical results and
  /// identical blocks_decoded counts.
  int pool_size = -1;
  /// Record a per-query trace (span tree with deterministic virtual
  /// timestamps) on QueryResult::trace. On by default; benches turn it
  /// off to measure instrumentation overhead.
  bool trace = true;
  /// The plan came from the warehouse's compiled-segment cache: the
  /// per-query compile_seconds charge is skipped (the segments already
  /// exist) and the trace records a zero-cost "compile (cached)" span.
  bool segment_cache_hit = false;
  /// The MVCC snapshot the scans read as of (the warehouse pins it at
  /// admission, under its snapshot-coherence lock). Null: Execute pins
  /// the current version of the query's tables itself, so even direct
  /// executor users get one consistent version across all slices.
  std::shared_ptr<const ReadSnapshot> snapshot;
  /// Record per-scan-site telemetry (ExecStats::scans → stl_scan). On
  /// by default; the bench's baseline arm turns the whole workload-
  /// intelligence layer off to measure its overhead.
  bool scan_telemetry = true;
  /// Live progress counters for stv_inflight (owned by the warehouse's
  /// in-flight registry); null when nobody is watching.
  obs::QueryProgress* progress = nullptr;
};

/// Telemetry for one scan site of the plan, summed over its slices —
/// the raw material for stl_scan. All fields are deterministic
/// (metadata-derived counts, canonical predicate text), so serial and
/// pooled runs produce identical profiles.
struct ScanProfile {
  std::string site;  // "probe" | "build"
  std::string table;
  std::string predicates;  // canonical text; empty for a full scan
  uint64_t rows_scanned = 0;
  uint64_t rows_out = 0;
  uint64_t blocks_read = 0;
  uint64_t blocks_skipped = 0;
  uint64_t bytes_decoded = 0;
};

/// Per-query execution telemetry.
struct ExecStats {
  /// Measured CPU seconds per slice (in a real cluster each slice runs
  /// on its own core, so modeled wall clock takes the max).
  std::vector<double> slice_seconds;
  /// Measured leader-side seconds (final agg, sort, limit).
  double leader_seconds = 0;
  /// Bytes that crossed node boundaries for this query.
  uint64_t network_bytes = 0;
  /// Blocks decoded across all shards (zone-map effectiveness).
  uint64_t blocks_decoded = 0;
  /// Rows returned to the client.
  uint64_t result_rows = 0;
  /// Fixed compile overhead charged (kCompiled only).
  double compile_seconds = 0;
  /// Block reads this query served from a secondary replica after a
  /// local media failure (§2.1 failure masking — customers never
  /// notice, but we count).
  uint64_t masked_reads = 0;
  /// Block reads that fell through to the S3 page-fault path (§2.3
  /// streaming restore / both copies gone).
  uint64_t s3_fault_reads = 0;
  /// Per-scan-site telemetry in deterministic plan order (build
  /// pre-passes before pipeline scans). Empty when
  /// ExecOptions::scan_telemetry is off or in interpreted mode.
  std::vector<ScanProfile> scans;

  double MaxSliceSeconds() const {
    double m = 0;
    for (double s : slice_seconds) m = std::max(m, s);
    return m;
  }

  /// Modeled parallel wall-clock: compile + slowest slice + network +
  /// leader.
  double ModeledSeconds(const CostModel& model) const {
    return compile_seconds + MaxSliceSeconds() +
           model.NetworkSeconds(network_bytes, 1) + leader_seconds;
  }

  /// Sum of slice CPU (what a single-node system would have to spend).
  double TotalSliceSeconds() const {
    double t = 0;
    for (double s : slice_seconds) t += s;
    return t;
  }
};

/// A completed query: rows, names, stats, and (when enabled) the trace.
struct QueryResult {
  exec::Batch rows;
  std::vector<std::string> column_names;
  ExecStats stats;
  /// Span tree recorded during execution; null when ExecOptions::trace
  /// is off. Virtual timestamps are assigned later, by the warehouse's
  /// QueryLog (they need the warehouse clock).
  std::shared_ptr<obs::Trace> trace;
};

/// Executes PhysicalQuery plans against a Cluster: per-slice pipelines
/// (scan [+ join] [+ partial agg]) then leader finalization — the §2.1
/// flow ("the executable and plan parameters are sent to each compute
/// node participating in the query ... intermediate results are sent
/// back to the leader node for final aggregation").
class QueryExecutor {
 public:
  explicit QueryExecutor(Cluster* cluster, ExecOptions options = {})
      : cluster_(cluster), options_(options) {
    if (options_.pool_size >= 0) {
      own_pool_ = std::make_unique<common::ThreadPool>(options_.pool_size);
    }
  }

  Result<QueryResult> Execute(const plan::PhysicalQuery& query);

 private:
  /// The pool per-slice work fans out on (serial-inline when sized 0).
  common::ThreadPool* pool() {
    return own_pool_ ? own_pool_.get() : cluster_->pool();
  }

  /// Builds the per-slice pipeline output batches for every slice,
  /// scanning the pinned `snapshot`. `trace`/`root` may be null
  /// (tracing disabled).
  Result<std::vector<exec::Batch>> RunSlices(const plan::PhysicalQuery& query,
                                             const ReadSnapshot& snapshot,
                                             ExecStats* stats,
                                             obs::Trace* trace,
                                             obs::Span* root);

  /// kInterpreted per-slice pipeline (scan/filter/agg only).
  Result<std::vector<exec::Batch>> RunSlicesInterpreted(
      const plan::PhysicalQuery& query, const ReadSnapshot& snapshot,
      ExecStats* stats, obs::Trace* trace, obs::Span* root);

  Cluster* cluster_;
  ExecOptions options_;
  std::unique_ptr<common::ThreadPool> own_pool_;
};

}  // namespace sdw::cluster

#endif  // SDW_CLUSTER_EXECUTOR_H_
