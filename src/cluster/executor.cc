#include "cluster/executor.h"

#include <numeric>

#include "common/hash.h"
#include "common/logging.h"
#include "exec/operators.h"
#include "exec/row_executor.h"
#include "obs/registry.h"
#include "sim/stopwatch.h"

namespace sdw::cluster {

namespace {

/// Key hash of one row over the given columns (must match across the
/// two sides of a shuffle).
uint64_t RowKeyHash(const exec::Batch& batch, const std::vector<int>& keys,
                    size_t row) {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  for (int k : keys) {
    h = HashCombine(h, batch.columns[k].DatumAt(row).Hash());
  }
  return h;
}

/// Builds the scan (+ residual filter) operator for one slice over the
/// statement's pinned snapshot. `telemetry` (when non-null) receives
/// this slice's scan counts; a CountRows cap above the filter records
/// the post-filter cardinality.
Result<exec::OperatorPtr> BuildScan(const ReadSnapshot& snapshot, int slice,
                                    const plan::ScanSpec& spec,
                                    exec::ScanTelemetry* telemetry = nullptr,
                                    obs::QueryProgress* progress = nullptr) {
  const storage::ShardRef* ref = snapshot.Find(spec.table, slice);
  if (ref == nullptr) {
    return Status::NotFound("no shard for table '" + spec.table + "'");
  }
  exec::ScanOptions scan_options;
  scan_options.telemetry = telemetry;
  scan_options.progress = progress;
  exec::OperatorPtr op =
      exec::ShardScan(*ref, spec.columns, spec.predicates, scan_options);
  if (spec.filter) {
    op = exec::Filter(std::move(op), spec.filter);
  }
  if (telemetry != nullptr) {
    op = exec::CountRows(std::move(op), &telemetry->rows_out);
  }
  return op;
}

/// Canonical text of a scan's pushed-down range predicates plus its
/// residual filter: "k >= 3 and k <= 9, filter(v > 100)". Stable across
/// runs (catalog column names + Datum::ToString), so it is safe to log
/// into the byte-identity-checked stl_scan history.
std::string RenderPredicates(Cluster* cluster, const plan::ScanSpec& spec) {
  std::string out;
  auto schema = cluster->catalog()->GetTable(spec.table);
  for (const storage::RangePredicate& p : spec.predicates) {
    std::string name =
        schema.ok() && p.column >= 0 &&
                static_cast<size_t>(p.column) < schema->num_columns()
            ? schema->column(p.column).name
            : "col" + std::to_string(p.column);
    if (!p.lo.is_null()) {
      if (!out.empty()) out += " and ";
      out += name + " >= " + p.lo.ToString();
    }
    if (!p.hi.is_null()) {
      if (!out.empty()) out += " and ";
      out += name + " <= " + p.hi.ToString();
    }
  }
  if (spec.filter) {
    if (!out.empty()) out += ", ";
    out += "filter(" + spec.filter->ToString() + ")";
  }
  return out;
}

/// Sums one scan site's per-slice telemetry into a ScanProfile on
/// ExecStats (leader thread, after the site's fan-out joined).
void AddScanProfile(ExecStats* stats, Cluster* cluster, const char* site,
                    const plan::ScanSpec& spec,
                    const std::vector<exec::ScanTelemetry>& slices) {
  ScanProfile profile;
  profile.site = site;
  profile.table = spec.table;
  profile.predicates = RenderPredicates(cluster, spec);
  for (const exec::ScanTelemetry& t : slices) {
    profile.rows_scanned += t.rows_scanned;
    profile.rows_out += t.rows_out;
    profile.blocks_read += t.blocks_read;
    profile.blocks_skipped += t.blocks_skipped;
    profile.bytes_decoded += t.bytes_decoded;
  }
  stats->scans.push_back(std::move(profile));
}

/// Number of slices that scan `table` (ALL tables are scanned on a
/// single slice to avoid duplicating rows).
Result<int> ScanSliceCount(Cluster* cluster, const std::string& table) {
  SDW_ASSIGN_OR_RETURN(TableSchema schema,
                       cluster->catalog()->GetTable(table));
  return schema.dist_style() == DistStyle::kAll ? 1
                                                : cluster->total_slices();
}

/// Output types of a scan pipeline, derived from the catalog so shuffle
/// buckets exist before (and regardless of whether) any batch arrives —
/// an empty side must still yield correctly-typed empty buckets.
Result<std::vector<TypeId>> ScanOutputTypes(Cluster* cluster,
                                            const plan::ScanSpec& spec) {
  SDW_ASSIGN_OR_RETURN(TableSchema schema,
                       cluster->catalog()->GetTable(spec.table));
  std::vector<TypeId> types;
  types.reserve(spec.columns.size());
  for (int c : spec.columns) types.push_back(schema.column(c).type);
  return types;
}

uint64_t SumBlocksDecoded(Cluster* cluster) {
  uint64_t total = 0;
  for (const std::string& table : cluster->catalog()->TableNames()) {
    for (int s = 0; s < cluster->total_slices(); ++s) {
      // shard_ref: holding the shared_ptr keeps the shard alive even if
      // a concurrent DROP gets it garbage-collected mid-iteration.
      auto shard = cluster->shard_ref(s, table);
      if (shard.ok()) total += (*shard)->blocks_decoded();
    }
  }
  return total;
}

void ResetBlockCounters(Cluster* cluster) {
  for (const std::string& table : cluster->catalog()->TableNames()) {
    for (int s = 0; s < cluster->total_slices(); ++s) {
      auto shard = cluster->shard_ref(s, table);
      if (shard.ok()) (*shard)->ResetCounters();
    }
  }
}

/// Deep-copies a batch (broadcast copies per slice).
exec::Batch CopyBatch(const exec::Batch& batch) {
  exec::Batch out = exec::MakeBatch(batch.Types());
  for (size_t c = 0; c < batch.columns.size(); ++c) {
    SDW_CHECK_OK(
        out.columns[c].AppendRange(batch.columns[c], 0, batch.columns[c].size()));
  }
  return out;
}

}  // namespace

Result<std::vector<exec::Batch>> QueryExecutor::RunSlices(
    const plan::PhysicalQuery& query, const ReadSnapshot& snapshot,
    ExecStats* stats, obs::Trace* trace, obs::Span* root) {
  const int slices = cluster_->total_slices();
  SDW_ASSIGN_OR_RETURN(int probe_slices,
                       ScanSliceCount(cluster_, query.scan.table));
  stats->slice_seconds.assign(slices, 0.0);
  obs::QueryProgress* progress = options_.progress;

  // --- Pre-passes for join strategies that move data. ---
  // Each pre-pass fans its per-slice scans out on the pool; every task
  // writes only its own pre-sized slot (seconds, bytes, partitions) and
  // the aggregation into stats happens after the join, so Result<>
  // semantics and accounting are identical to a serial run.
  exec::Batch broadcast_build;
  std::vector<TypeId> build_types;
  std::vector<exec::Batch> probe_buckets;  // kShuffle: per target slice
  std::vector<exec::Batch> build_buckets;
  bool use_buckets = false;

  if (query.join.has_value()) {
    const plan::JoinSpec& join = *query.join;
    if (join.strategy == plan::JoinStrategy::kBroadcastBuild) {
      // Collect the (filtered) build side from its slices once.
      SDW_ASSIGN_OR_RETURN(int build_slices,
                           ScanSliceCount(cluster_, join.build.table));
      SDW_ASSIGN_OR_RETURN(build_types,
                           ScanOutputTypes(cluster_, join.build));
      std::vector<exec::Batch> parts(build_slices);
      std::vector<double> part_seconds(build_slices, 0.0);
      // Per-slice telemetry slots, like part_seconds: each worker fills
      // only its own, the leader sums after the join.
      std::vector<exec::ScanTelemetry> btel;
      if (options_.scan_telemetry) btel.assign(build_slices, {});
      // Spans are created on the leader thread before the fan-out;
      // workers only write their own span's counters (deque gives
      // pointer stability), which keeps this TSan-clean.
      obs::Span* bparent =
          trace ? trace->AddSpan("broadcast", root->span_id, 1) : nullptr;
      std::vector<obs::Span*> bspans(build_slices, nullptr);
      if (trace) {
        for (int s = 0; s < build_slices; ++s) {
          bspans[s] = trace->AddSpan("broadcast scan", bparent->span_id, 0, s);
        }
      }
      SDW_RETURN_IF_ERROR(pool()->ParallelFor(
          build_slices, [&](int s) -> Status {
            sim::Stopwatch timer;
            obs::ScopedSpan scoped(bspans[s]);
            SDW_ASSIGN_OR_RETURN(
                exec::OperatorPtr op,
                BuildScan(snapshot, s, join.build,
                          btel.empty() ? nullptr : &btel[s], progress));
            SDW_ASSIGN_OR_RETURN(parts[s], exec::Collect(op.get()));
            part_seconds[s] = timer.Seconds();
            if (bspans[s]) {
              bspans[s]->counters.rows_out = parts[s].num_rows();
              bspans[s]->real_seconds = part_seconds[s];
            }
            return Status::OK();
          }));
      if (!btel.empty()) {
        AddScanProfile(stats, cluster_, "build", join.build, btel);
      }
      exec::Batch collected = exec::MakeBatch(build_types);
      for (int s = 0; s < build_slices; ++s) {
        stats->slice_seconds[s] += part_seconds[s];
        for (size_t c = 0; c < collected.columns.size(); ++c) {
          SDW_RETURN_IF_ERROR(collected.columns[c].AppendRange(
              parts[s].columns[c], 0, parts[s].columns[c].size()));
        }
      }
      // Broadcast: one copy to every other node.
      const uint64_t bytes = EstimateBytes(collected.columns);
      stats->network_bytes +=
          bytes * static_cast<uint64_t>(cluster_->num_nodes() - 1);
      if (bparent) {
        bparent->counters.bytes_shuffled =
            bytes * static_cast<uint64_t>(cluster_->num_nodes() - 1);
      }
      broadcast_build = std::move(collected);
    } else if (join.strategy == plan::JoinStrategy::kShuffle) {
      // Re-hash both sides on the join key across all slices.
      use_buckets = true;
      auto shuffle = [&](const plan::ScanSpec& spec,
                         const std::vector<int>& keys,
                         std::vector<exec::Batch>* buckets,
                         const char* label, const char* site) -> Status {
        SDW_ASSIGN_OR_RETURN(int side_slices,
                             ScanSliceCount(cluster_, spec.table));
        SDW_ASSIGN_OR_RETURN(std::vector<TypeId> types,
                             ScanOutputTypes(cluster_, spec));
        // local[s][t]: rows slice s routes to target slice t. Allocated
        // from catalog types up front, so a side that scans zero
        // batches still produces (empty) buckets for every target.
        std::vector<std::vector<exec::Batch>> local(side_slices);
        std::vector<double> secs(side_slices, 0.0);
        std::vector<uint64_t> net(side_slices, 0);
        std::vector<exec::ScanTelemetry> stel;
        if (options_.scan_telemetry) stel.assign(side_slices, {});
        obs::Span* sparent =
            trace ? trace->AddSpan(label, root->span_id, 1) : nullptr;
        std::vector<obs::Span*> sspans(side_slices, nullptr);
        if (trace) {
          for (int s = 0; s < side_slices; ++s) {
            sspans[s] = trace->AddSpan("shuffle scan", sparent->span_id, 0, s);
          }
        }
        SDW_RETURN_IF_ERROR(pool()->ParallelFor(
            side_slices, [&](int s) -> Status {
              sim::Stopwatch timer;
              obs::ScopedSpan scoped(sspans[s]);
              SDW_ASSIGN_OR_RETURN(
                  exec::OperatorPtr op,
                  BuildScan(snapshot, s, spec,
                            stel.empty() ? nullptr : &stel[s], progress));
              std::vector<exec::Batch>& mine = local[s];
              mine.reserve(slices);
              for (int t = 0; t < slices; ++t) {
                mine.push_back(exec::MakeBatch(types));
              }
              uint64_t rows_routed = 0;
              while (true) {
                SDW_ASSIGN_OR_RETURN(std::optional<exec::Batch> batch,
                                     op->Next());
                if (!batch.has_value()) break;
                const size_t n = batch->num_rows();
                rows_routed += n;
                for (size_t i = 0; i < n; ++i) {
                  const int target = static_cast<int>(
                      RowKeyHash(*batch, keys, i) %
                      static_cast<uint64_t>(slices));
                  SDW_RETURN_IF_ERROR(
                      exec::AppendRow(*batch, i, &mine[target]));
                }
              }
              // Cross-node moves hit the interconnect: charge the real
              // wire size of each remote-bound bucket (matches the
              // EstimateBytes accounting of broadcast/leader paths and
              // counts varchar payloads, unlike a flat per-row rate).
              const int src_node = cluster_->NodeOfSlice(s)->node_id();
              for (int t = 0; t < slices; ++t) {
                if (cluster_->NodeOfSlice(t)->node_id() != src_node) {
                  net[s] += EstimateBytes(mine[t].columns);
                }
              }
              secs[s] = timer.Seconds();
              if (sspans[s]) {
                sspans[s]->counters.rows_out = rows_routed;
                sspans[s]->counters.bytes_shuffled = net[s];
                sspans[s]->real_seconds = secs[s];
              }
              return Status::OK();
            }));
        if (!stel.empty()) AddScanProfile(stats, cluster_, site, spec, stel);
        buckets->clear();
        for (int t = 0; t < slices; ++t) {
          buckets->push_back(exec::MakeBatch(types));
        }
        for (int s = 0; s < side_slices; ++s) {
          stats->slice_seconds[s] += secs[s];
          stats->network_bytes += net[s];
          for (int t = 0; t < slices; ++t) {
            for (size_t c = 0; c < (*buckets)[t].columns.size(); ++c) {
              SDW_RETURN_IF_ERROR((*buckets)[t].columns[c].AppendRange(
                  local[s][t].columns[c], 0, local[s][t].columns[c].size()));
            }
          }
        }
        return Status::OK();
      };
      SDW_RETURN_IF_ERROR(shuffle(query.scan, query.join->probe_keys,
                                  &probe_buckets, "shuffle probe", "probe"));
      SDW_RETURN_IF_ERROR(shuffle(query.join->build, query.join->build_keys,
                                  &build_buckets, "shuffle build", "build"));
    }
  }

  // --- Per-slice pipelines, one pool task per slice. ---
  const int pipeline_slices = use_buckets ? slices : probe_slices;
  if (progress != nullptr) progress->set_slices_total(pipeline_slices);
  std::vector<exec::Batch> outputs(pipeline_slices);
  std::vector<double> secs(pipeline_slices, 0.0);
  std::vector<uint64_t> net(pipeline_slices, 0);
  // kShuffle pipelines read the shuffle buckets (already profiled by
  // the pre-pass); only direct shard scans get telemetry slots here.
  std::vector<exec::ScanTelemetry> ptel;
  std::vector<exec::ScanTelemetry> ctel;  // co-located build
  const bool colocated_build =
      !use_buckets && query.join.has_value() &&
      query.join->strategy == plan::JoinStrategy::kCoLocated;
  if (options_.scan_telemetry && !use_buckets) {
    ptel.assign(pipeline_slices, {});
    if (colocated_build) ctel.assign(pipeline_slices, {});
  }
  obs::Span* pparent =
      trace ? trace->AddSpan("pipeline", root->span_id, 2) : nullptr;
  std::vector<obs::Span*> pspans(pipeline_slices, nullptr);
  if (trace) {
    for (int s = 0; s < pipeline_slices; ++s) {
      pspans[s] = trace->AddSpan("slice pipeline", pparent->span_id, 0, s);
    }
  }
  SDW_RETURN_IF_ERROR(pool()->ParallelFor(
      pipeline_slices, [&](int s) -> Status {
        sim::Stopwatch timer;
        obs::ScopedSpan scoped(pspans[s]);
        exec::OperatorPtr pipeline;
        if (use_buckets) {
          auto probe_types = probe_buckets[s].Types();
          std::vector<exec::Batch> one;
          one.push_back(std::move(probe_buckets[s]));
          exec::OperatorPtr probe =
              exec::MemoryScan(probe_types, std::move(one));
          auto bt = build_buckets[s].Types();
          std::vector<exec::Batch> bone;
          bone.push_back(std::move(build_buckets[s]));
          exec::OperatorPtr build = exec::MemoryScan(bt, std::move(bone));
          pipeline = exec::HashJoin(std::move(probe), std::move(build),
                                    query.join->probe_keys,
                                    query.join->build_keys);
        } else {
          SDW_ASSIGN_OR_RETURN(
              pipeline, BuildScan(snapshot, s, query.scan,
                                  ptel.empty() ? nullptr : &ptel[s], progress));
          if (query.join.has_value()) {
            const plan::JoinSpec& join = *query.join;
            exec::OperatorPtr build;
            if (join.strategy == plan::JoinStrategy::kBroadcastBuild) {
              std::vector<exec::Batch> one;
              one.push_back(CopyBatch(broadcast_build));
              build = exec::MemoryScan(build_types, std::move(one));
            } else {  // co-located
              SDW_ASSIGN_OR_RETURN(
                  build,
                  BuildScan(snapshot, s, join.build,
                            ctel.empty() ? nullptr : &ctel[s], progress));
            }
            pipeline = exec::HashJoin(std::move(pipeline), std::move(build),
                                      join.probe_keys, join.build_keys);
          }
        }
        if (query.agg.has_value()) {
          pipeline = exec::HashAggregate(std::move(pipeline),
                                         query.agg->group_by, query.agg->aggs,
                                         exec::AggMode::kPartial);
        }
        SDW_ASSIGN_OR_RETURN(outputs[s], exec::Collect(pipeline.get()));
        secs[s] = timer.Seconds();
        // Intermediate results stream back to the leader.
        net[s] = EstimateBytes(outputs[s].columns);
        if (pspans[s]) {
          pspans[s]->counters.rows_out = outputs[s].num_rows();
          pspans[s]->counters.bytes_shuffled = net[s];
          pspans[s]->real_seconds = secs[s];
        }
        if (progress != nullptr) progress->SliceDone();
        return Status::OK();
      }));
  if (!ptel.empty()) {
    AddScanProfile(stats, cluster_, "probe", query.scan, ptel);
  }
  if (!ctel.empty()) {
    AddScanProfile(stats, cluster_, "build", query.join->build, ctel);
  }
  for (int s = 0; s < pipeline_slices; ++s) {
    stats->slice_seconds[s] += secs[s];
    stats->network_bytes += net[s];
  }
  return outputs;
}

Result<std::vector<exec::Batch>> QueryExecutor::RunSlicesInterpreted(
    const plan::PhysicalQuery& query, const ReadSnapshot& snapshot,
    ExecStats* stats, obs::Trace* trace, obs::Span* root) {
  if (query.join.has_value()) {
    return Status::NotSupported(
        "interpreted mode supports scan/filter/aggregate pipelines");
  }
  if (query.agg.has_value()) {
    for (const exec::AggSpec& spec : query.agg->aggs) {
      if (spec.fn == exec::AggFn::kApproxDistinct) {
        return Status::NotSupported(
            "APPROXIMATE aggregates require the compiled engine (sketch "
            "partials are not mergeable row-at-a-time)");
      }
    }
  }
  SDW_ASSIGN_OR_RETURN(int probe_slices,
                       ScanSliceCount(cluster_, query.scan.table));
  stats->slice_seconds.assign(cluster_->total_slices(), 0.0);
  SDW_ASSIGN_OR_RETURN(TableSchema schema,
                       cluster_->catalog()->GetTable(query.scan.table));
  // Pipeline output types (must match the compiled path's layout).
  std::vector<TypeId> scan_types;
  for (int c : query.scan.columns) scan_types.push_back(schema.column(c).type);
  std::vector<TypeId> out_types;
  if (query.agg.has_value()) {
    for (int g : query.agg->group_by) out_types.push_back(scan_types[g]);
    for (const exec::AggSpec& a : query.agg->aggs) {
      switch (a.fn) {
        case exec::AggFn::kCount:
          out_types.push_back(TypeId::kInt64);
          break;
        case exec::AggFn::kSum:
          out_types.push_back(a.column >= 0 &&
                                      scan_types[a.column] == TypeId::kDouble
                                  ? TypeId::kDouble
                                  : TypeId::kInt64);
          break;
        case exec::AggFn::kMin:
        case exec::AggFn::kMax:
          out_types.push_back(scan_types[a.column]);
          break;
        case exec::AggFn::kApproxDistinct:
          out_types.push_back(TypeId::kInt64);  // unreachable: guarded above
          break;
      }
    }
  } else {
    out_types = scan_types;
  }

  // Interpreted mode keeps live slice progress but records no scan
  // profiles: RowScan has no zone-map/block accounting (stl_scan only
  // covers the compiled production path).
  if (options_.progress != nullptr) {
    options_.progress->set_slices_total(probe_slices);
  }
  std::vector<exec::Batch> outputs(probe_slices);
  std::vector<double> secs(probe_slices, 0.0);
  std::vector<uint64_t> net(probe_slices, 0);
  obs::Span* pparent =
      trace ? trace->AddSpan("pipeline", root->span_id, 2) : nullptr;
  std::vector<obs::Span*> pspans(probe_slices, nullptr);
  if (trace) {
    for (int s = 0; s < probe_slices; ++s) {
      pspans[s] = trace->AddSpan("slice pipeline", pparent->span_id, 0, s);
    }
  }
  SDW_RETURN_IF_ERROR(pool()->ParallelFor(probe_slices, [&](int s) -> Status {
    sim::Stopwatch timer;
    obs::ScopedSpan scoped(pspans[s]);
    const storage::ShardRef* ref = snapshot.Find(query.scan.table, s);
    if (ref == nullptr) {
      return Status::NotFound("no shard for table '" + query.scan.table + "'");
    }
    exec::RowOperatorPtr pipe = exec::RowScan(*ref, query.scan.columns);
    if (query.scan.filter) {
      pipe = exec::RowFilter(std::move(pipe), query.scan.filter);
    }
    if (query.agg.has_value()) {
      pipe = exec::RowAggregate(std::move(pipe), query.agg->group_by,
                                query.agg->aggs);
    }
    SDW_ASSIGN_OR_RETURN(outputs[s], exec::CollectRows(pipe.get(), out_types));
    secs[s] = timer.Seconds();
    net[s] = EstimateBytes(outputs[s].columns);
    if (pspans[s]) {
      pspans[s]->counters.rows_out = outputs[s].num_rows();
      pspans[s]->counters.bytes_shuffled = net[s];
      pspans[s]->real_seconds = secs[s];
    }
    if (options_.progress != nullptr) options_.progress->SliceDone();
    return Status::OK();
  }));
  for (int s = 0; s < probe_slices; ++s) {
    stats->slice_seconds[s] += secs[s];
    stats->network_bytes += net[s];
  }
  return outputs;
}

Result<QueryResult> QueryExecutor::Execute(const plan::PhysicalQuery& query) {
  QueryResult result;
  ExecStats& stats = result.stats;
  if (options_.progress != nullptr) {
    options_.progress->set_phase(obs::QueryPhase::kExec);
  }
  obs::Trace* trace = nullptr;
  obs::Span* root = nullptr;
  if (options_.trace) {
    result.trace = std::make_shared<obs::Trace>();
    trace = result.trace.get();
    root = trace->AddSpan("query", -1, 0);
  }
  // Pin the statement's snapshot if the caller (the warehouse) did not
  // hand one in: one consistent version per table across all slices.
  std::shared_ptr<const ReadSnapshot> snapshot = options_.snapshot;
  if (snapshot == nullptr) {
    std::vector<std::string> tables = {query.scan.table};
    if (query.join.has_value()) tables.push_back(query.join->build.table);
    auto pinned = std::make_shared<ReadSnapshot>();
    SDW_RETURN_IF_ERROR(cluster_->PinTables(tables, pinned.get()));
    snapshot = std::move(pinned);
  }
  ResetBlockCounters(cluster_);
  // Masking counters are cumulative and cluster-wide, so the delta
  // double-counts when two executors interleave on one cluster. It is
  // only the fallback for untraced runs; traced runs report per-query
  // span sums instead.
  const uint64_t masked_before = cluster_->masked_reads();
  const uint64_t s3_faults_before = cluster_->s3_fault_reads();
  if (options_.mode == ExecutionMode::kCompiled) {
    stats.compile_seconds =
        options_.segment_cache_hit ? 0.0 : options_.compile_seconds;
    if (trace) {
      obs::Span* compile = trace->AddSpan(
          options_.segment_cache_hit ? "compile (cached)" : "compile",
          root->span_id, 0);
      compile->real_seconds = stats.compile_seconds;
    }
  }

  std::vector<exec::Batch> slice_outputs;
  if (options_.mode == ExecutionMode::kCompiled) {
    SDW_ASSIGN_OR_RETURN(slice_outputs,
                         RunSlices(query, *snapshot, &stats, trace, root));
  } else {
    SDW_ASSIGN_OR_RETURN(
        slice_outputs,
        RunSlicesInterpreted(query, *snapshot, &stats, trace, root));
  }

  // --- Leader finalization. ---
  if (options_.progress != nullptr) {
    options_.progress->set_phase(obs::QueryPhase::kFinalize);
  }
  sim::Stopwatch leader_timer;
  obs::Span* finalize =
      trace ? trace->AddSpan("finalize", root->span_id, 3) : nullptr;
  obs::ScopedSpan finalize_scope(finalize);
  std::vector<TypeId> types;
  for (const auto& b : slice_outputs) {
    if (b.num_columns() > 0) {
      types = b.Types();
      break;
    }
  }
  if (types.empty() && !slice_outputs.empty()) {
    types = slice_outputs[0].Types();
  }
  exec::OperatorPtr leader =
      exec::MemoryScan(types, std::move(slice_outputs));
  if (query.agg.has_value()) {
    // Final aggregation: group columns are the leading partial columns.
    std::vector<int> final_groups(query.agg->group_by.size());
    std::iota(final_groups.begin(), final_groups.end(), 0);
    leader = exec::HashAggregate(std::move(leader), final_groups,
                                 query.agg->aggs, exec::AggMode::kFinal);
  }
  if (!query.project.empty()) {
    leader = exec::Project(std::move(leader), query.project);
  }
  if (!query.order_by.empty()) {
    leader = exec::Sort(std::move(leader), query.order_by);
  }
  if (query.limit.has_value()) {
    leader = exec::Limit(std::move(leader), *query.limit);
  }
  SDW_ASSIGN_OR_RETURN(result.rows, exec::Collect(leader.get()));
  stats.leader_seconds = leader_timer.Seconds();
  stats.result_rows = result.rows.num_rows();
  if (trace) {
    finalize->counters.rows_out = result.rows.num_rows();
    finalize->real_seconds = stats.leader_seconds;
    // Per-query counters from the span tree: work done by other
    // executors on the same cluster never leaks in here.
    obs::SpanCounters total;
    for (const auto& sp : trace->spans()) total += sp.counters;
    stats.blocks_decoded = total.blocks_decoded;
    stats.masked_reads = total.masked_reads;
    stats.s3_fault_reads = total.s3_fault_reads;
  } else {
    stats.blocks_decoded = SumBlocksDecoded(cluster_);
    stats.masked_reads = cluster_->masked_reads() - masked_before;
    stats.s3_fault_reads = cluster_->s3_fault_reads() - s3_faults_before;
  }
  cluster_->AddNetworkBytes(stats.network_bytes);
  result.column_names = query.output_names;
  static obs::Counter* query_count =
      obs::Registry::Global().counter("sdw_query_count");
  static obs::Counter* query_rows =
      obs::Registry::Global().counter("sdw_query_result_rows");
  query_count->Add();
  query_rows->Add(stats.result_rows);
  return result;
}

}  // namespace sdw::cluster
