#include "cluster/wlm.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "obs/registry.h"
#include "sim/stopwatch.h"

namespace sdw::cluster {

WlmConfig SanitizeWlmConfig(WlmConfig config) {
  if (config.concurrency_slots < 1) {
    SDW_LOG(Warning) << "WLM concurrency_slots=" << config.concurrency_slots
                     << " is not serviceable; clamping to 1";
    config.concurrency_slots = 1;
  }
  if (config.max_report_history < 1) config.max_report_history = 1;
  return config;
}

AdmissionController::AdmissionController(WlmConfig config)
    : config_(SanitizeWlmConfig(config)) {}

Result<AdmissionController::Slot> AdmissionController::Admit() {
  static obs::Counter* admitted_metric =
      obs::Registry::Global().counter("sdw_wlm_admitted");
  static obs::Counter* timeouts_metric =
      obs::Registry::Global().counter("sdw_wlm_timeouts");
  sim::Stopwatch wait_timer;
  common::MutexLock lock(mu_);
  const uint64_t ticket = next_ticket_++;
  queue_.push_back(ticket);
  auto at_head_with_free_slot = [this, ticket]() SDW_REQUIRES(mu_) {
    return running_ < config_.concurrency_slots && !queue_.empty() &&
           queue_.front() == ticket;
  };
  bool ready = at_head_with_free_slot();
  if (!ready) {
    if (config_.queue_timeout_seconds > 0) {
      ready = slot_free_.WaitFor(
          mu_, std::chrono::duration<double>(config_.queue_timeout_seconds),
          at_head_with_free_slot);
    } else {
      slot_free_.Wait(mu_, at_head_with_free_slot);
      ready = true;
    }
  }
  if (!ready) {
    queue_.erase(std::find(queue_.begin(), queue_.end(), ticket));
    ++timeouts_;
    timeouts_metric->Add();
    // Our departure may have promoted the next waiter to the head.
    slot_free_.NotifyAll();
    return Status::DeadlineExceeded(
        "cancelled after " + std::to_string(config_.queue_timeout_seconds) +
        "s in the WLM queue (" + std::to_string(config_.concurrency_slots) +
        " slots busy)");
  }
  queue_.pop_front();
  ++running_;
  max_in_flight_ = std::max(max_in_flight_, running_);
  ++admitted_;
  admitted_metric->Add();
  // A new head may be admissible if slots remain.
  slot_free_.NotifyAll();
  Slot slot;
  slot.controller_ = this;
  slot.queued_seconds_ = wait_timer.Seconds();
  return slot;
}

void AdmissionController::Release() {
  {
    common::MutexLock lock(mu_);
    --running_;
  }
  slot_free_.NotifyAll();
}

void AdmissionController::Record(Report report) {
  common::MutexLock lock(mu_);
  report.seq = next_seq_++;
  reports_.push_back(std::move(report));
  while (reports_.size() > config_.max_report_history) reports_.pop_front();
}

std::vector<AdmissionController::Report> AdmissionController::reports() const {
  common::MutexLock lock(mu_);
  return {reports_.begin(), reports_.end()};
}

int AdmissionController::running() const {
  common::MutexLock lock(mu_);
  return running_;
}

size_t AdmissionController::queued() const {
  common::MutexLock lock(mu_);
  return queue_.size();
}

int AdmissionController::max_in_flight() const {
  common::MutexLock lock(mu_);
  return max_in_flight_;
}

uint64_t AdmissionController::admitted() const {
  common::MutexLock lock(mu_);
  return admitted_;
}

uint64_t AdmissionController::timeouts() const {
  common::MutexLock lock(mu_);
  return timeouts_;
}

WorkloadManager::WorkloadManager(sim::Engine* engine, WlmConfig config)
    : engine_(engine), config_(SanitizeWlmConfig(config)) {}

void WorkloadManager::Submit(double service_seconds,
                             std::function<void(const QueryReport&)> done) {
  queue_.push_back({service_seconds, engine_->Now(), std::move(done)});
  Admit();
}

void WorkloadManager::Admit() {
  while (running_ < config_.concurrency_slots && !queue_.empty()) {
    Pending next = std::move(queue_.front());
    queue_.erase(queue_.begin());
    ++running_;
    // Smaller per-slot memory share slows each query down.
    const double effective =
        next.service_seconds *
        (1.0 + config_.per_slot_memory_penalty *
                   (config_.concurrency_slots - 1));
    const double start = engine_->Now();
    engine_->Schedule(effective, [this, next = std::move(next), start,
                                  effective] {
      QueryReport report;
      report.submitted_at = next.submitted_at;
      report.queued_seconds = start - next.submitted_at;
      report.exec_seconds = effective;
      report.finished_at = engine_->Now();
      reports_.push_back(report);
      while (reports_.size() > config_.max_report_history) {
        reports_.pop_front();
      }
      if (next.done) next.done(report);
      --running_;
      Admit();
    });
  }
}

}  // namespace sdw::cluster
