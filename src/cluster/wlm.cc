#include "cluster/wlm.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "obs/registry.h"
#include "sim/stopwatch.h"

namespace sdw::cluster {
namespace {

/// Wait-slice while the SQA fast lane is enabled: waiters wake at this
/// cadence to demote overstayers even when no slot is released.
constexpr double kDemotePollSeconds = 0.005;

bool Contains(const std::vector<std::string>& haystack,
              const std::string& needle) {
  return std::find(haystack.begin(), haystack.end(), needle) != haystack.end();
}

}  // namespace

WlmConfig SanitizeWlmConfig(WlmConfig config) {
  if (config.concurrency_slots < 1) {
    SDW_LOG(Warning) << "WLM concurrency_slots=" << config.concurrency_slots
                     << " is not serviceable; clamping to 1";
    config.concurrency_slots = 1;
  }
  if (config.max_report_history < 1) config.max_report_history = 1;
  int share_sum = 0;
  bool has_default = false;
  for (WlmQueueConfig& queue : config.queues) {
    if (queue.name.empty()) queue.name = "default";
    if (queue.slots < 1) {
      SDW_LOG(Warning) << "WLM queue '" << queue.name
                       << "' share=" << queue.slots
                       << " is not serviceable; clamping to 1";
      queue.slots = 1;
    }
    if (queue.queue_timeout_seconds < 0) queue.queue_timeout_seconds = 0;
    share_sum += queue.slots;
    has_default = has_default || queue.name == "default";
  }
  if (!config.queues.empty()) {
    if (!has_default) {
      // Every statement must classify somewhere: append the catch-all.
      WlmQueueConfig fallback;
      fallback.name = "default";
      fallback.slots = std::max(1, config.concurrency_slots - share_sum);
      share_sum += fallback.slots;
      config.queues.push_back(std::move(fallback));
    }
    if (share_sum > config.concurrency_slots) {
      SDW_LOG(Warning) << "WLM queue shares sum to " << share_sum
                       << " > concurrency_slots=" << config.concurrency_slots
                       << "; growing the total so no queue starves";
      config.concurrency_slots = share_sum;
    }
    for (WlmQueueConfig& queue : config.queues) {
      if (queue.hop_on_timeout.empty()) continue;
      const bool dangling =
          queue.hop_on_timeout == queue.name ||
          std::none_of(config.queues.begin(), config.queues.end(),
                       [&queue](const WlmQueueConfig& other) {
                         return other.name == queue.hop_on_timeout;
                       });
      if (dangling) {
        SDW_LOG(Warning) << "WLM queue '" << queue.name << "' hop target '"
                         << queue.hop_on_timeout
                         << "' is self or unknown; clearing (timeouts cancel)";
        queue.hop_on_timeout.clear();
      }
    }
  }
  if (config.enable_sqa) {
    if (config.sqa_slots < 1) {
      SDW_LOG(Warning) << "WLM sqa_slots=" << config.sqa_slots
                       << " is not serviceable; clamping to 1";
      config.sqa_slots = 1;
    }
    if (config.sqa_max_estimated_seconds <= 0) {
      config.sqa_max_estimated_seconds = 0.25;
    }
    if (config.sqa_demote_exec_seconds <= 0) {
      config.sqa_demote_exec_seconds = 1.0;
    }
  }
  return config;
}

AdmissionController::AdmissionController(WlmConfig config)
    : config_(SanitizeWlmConfig(std::move(config))) {
  if (config_.queues.empty()) {
    QueueState classic;
    classic.config.name = "default";
    classic.config.slots = config_.concurrency_slots;
    queues_.push_back(std::move(classic));
  } else {
    for (const WlmQueueConfig& queue : config_.queues) {
      QueueState state;
      state.config = queue;
      queues_.push_back(std::move(state));
    }
  }
  if (config_.enable_sqa) {
    QueueState fast_lane;
    fast_lane.config.name = "sqa";
    fast_lane.config.slots = config_.sqa_slots;
    sqa_index_ = static_cast<int>(queues_.size());
    queues_.push_back(std::move(fast_lane));
  }
}

Result<AdmissionController::Slot> AdmissionController::Admit() {
  return Admit(AdmitRequest{}, nullptr);
}

int AdmissionController::ClassifyLocked(const AdmitRequest& request) const {
  const int named = sqa_index_ >= 0 ? sqa_index_ : static_cast<int>(queues_.size());
  // Query-class rules are the more specific signal: they win over
  // user-group rules regardless of queue order (DESIGN.md §4k).
  if (!request.query_class.empty()) {
    for (int i = 0; i < named; ++i) {
      if (Contains(queues_[i].config.query_classes, request.query_class)) {
        return i;
      }
    }
  }
  if (!request.user_group.empty()) {
    for (int i = 0; i < named; ++i) {
      if (Contains(queues_[i].config.user_groups, request.user_group)) {
        return i;
      }
    }
  }
  for (int i = 0; i < named; ++i) {
    if (queues_[i].config.name == "default") return i;
  }
  return 0;  // unreachable after SanitizeWlmConfig, but stay total
}

int AdmissionController::HopTargetLocked(int queue_index, int home) const {
  // A fast-lane waiter that times out always falls back to its home
  // queue — SQA must never cancel a query its estimate attracted.
  if (queue_index == sqa_index_) return home;
  const std::string& target = queues_[queue_index].config.hop_on_timeout;
  if (target.empty()) return -1;
  const int named = sqa_index_ >= 0 ? sqa_index_ : static_cast<int>(queues_.size());
  for (int i = 0; i < named; ++i) {
    if (i != queue_index && queues_[i].config.name == target) return i;
  }
  return -1;
}

double AdmissionController::QueueTimeoutLocked(int queue_index) const {
  const double per_queue = queues_[queue_index].config.queue_timeout_seconds;
  return per_queue > 0 ? per_queue : config_.queue_timeout_seconds;
}

void AdmissionController::DemoteOverstayersLocked() {
  if (sqa_index_ < 0) return;
  static obs::Counter* demotions_metric =
      obs::Registry::Global().counter("sdw_wlm_sqa_demotions");
  for (auto& [ticket, entry] : running_entries_) {
    if (entry.queue != sqa_index_) continue;
    if (entry.exec_timer.Seconds() < config_.sqa_demote_exec_seconds) continue;
    // Misestimated short query: move its slot accounting to its home
    // queue — oversubscribing the home rather than blocking a runner —
    // so the fast lane frees for genuinely short statements.
    --queues_[sqa_index_].running;
    ++queues_[entry.home].running;
    entry.queue = entry.home;
    ++sqa_demotions_;
    demotions_metric->Add();
  }
}

Result<AdmissionController::Slot> AdmissionController::Admit(
    const AdmitRequest& request, Report* timeout_report) {
  static obs::Counter* admitted_metric =
      obs::Registry::Global().counter("sdw_wlm_admitted");
  static obs::Counter* timeouts_metric =
      obs::Registry::Global().counter("sdw_wlm_timeouts");
  static obs::Counter* hops_metric =
      obs::Registry::Global().counter("sdw_wlm_hops");
  sim::Stopwatch wait_timer;
  sim::Stopwatch queue_timer;  // residence in the current queue only
  common::MutexLock lock(mu_);
  const uint64_t ticket = next_ticket_++;
  const int home = ClassifyLocked(request);
  const bool sqa_eligible =
      sqa_index_ >= 0 && request.estimated_seconds >= 0 &&
      request.estimated_seconds <= config_.sqa_max_estimated_seconds;
  int queue_index = sqa_eligible ? sqa_index_ : home;
  int hops = 0;
  queues_[queue_index].fifo.push_back(ticket);
  auto at_head_with_free_slot = [this, &queue_index,
                                 ticket]() SDW_REQUIRES(mu_) {
    const QueueState& queue = queues_[queue_index];
    return queue.running < queue.config.slots && !queue.fifo.empty() &&
           queue.fifo.front() == ticket;
  };
  for (;;) {
    DemoteOverstayersLocked();
    if (at_head_with_free_slot()) break;
    const double timeout = QueueTimeoutLocked(queue_index);
    if (timeout > 0) {
      const double remaining = timeout - queue_timer.Seconds();
      if (remaining <= 0) {
        QueueState& queue = queues_[queue_index];
        queue.fifo.erase(
            std::find(queue.fifo.begin(), queue.fifo.end(), ticket));
        const int hop_to = HopTargetLocked(queue_index, home);
        if (hop_to >= 0) {
          ++queue.hops_out;
          ++hops_;
          ++hops;
          hops_metric->Add();
          queue_index = hop_to;
          queues_[queue_index].fifo.push_back(ticket);  // tail: FIFO order
          queue_timer.Restart();
          // Our departure may have promoted the old queue's next waiter.
          slot_free_.NotifyAll();
          continue;
        }
        ++queue.timeouts;
        ++timeouts_;
        timeouts_metric->Add();
        slot_free_.NotifyAll();
        if (timeout_report != nullptr) {
          timeout_report->session_id = request.session_id;
          timeout_report->state = "timeout";
          timeout_report->queue = queue.config.name;
          timeout_report->statement = request.statement;
          // The wait accrued across *every* queue visited, not just the
          // final residence — hopping must not launder queued_seconds.
          timeout_report->queued_seconds = wait_timer.Seconds();
          timeout_report->hops = hops;
        }
        return Status::DeadlineExceeded(
            "cancelled after " + std::to_string(wait_timer.Seconds()) +
            "s in the WLM queue '" + queue.config.name + "' (" +
            std::to_string(hops) + " hops)");
      }
      // Bounded slices while SQA is on so overstayer demotion runs even
      // when no slot is released.
      const double slice =
          sqa_index_ >= 0 ? std::min(remaining, kDemotePollSeconds) : remaining;
      slot_free_.WaitFor(mu_, std::chrono::duration<double>(slice),
                         at_head_with_free_slot);
    } else if (sqa_index_ >= 0) {
      slot_free_.WaitFor(mu_, std::chrono::duration<double>(kDemotePollSeconds),
                         at_head_with_free_slot);
    } else {
      slot_free_.Wait(mu_, at_head_with_free_slot);
    }
  }
  QueueState& queue = queues_[queue_index];
  queue.fifo.pop_front();
  ++queue.running;
  queue.max_in_flight = std::max(queue.max_in_flight, queue.running);
  ++queue.admitted;
  ++running_;
  max_in_flight_ = std::max(max_in_flight_, running_);
  ++admitted_;
  admitted_metric->Add();
  RunningEntry entry;
  entry.queue = queue_index;
  entry.home = home;
  running_entries_.emplace(ticket, std::move(entry));
  // A new head may be admissible if slots remain.
  slot_free_.NotifyAll();
  Slot slot;
  slot.controller_ = this;
  slot.ticket_ = ticket;
  slot.queued_seconds_ = wait_timer.Seconds();
  slot.queue_ = queue.config.name;
  slot.hops_ = hops;
  return slot;
}

void AdmissionController::Release(uint64_t ticket) {
  {
    common::MutexLock lock(mu_);
    auto it = running_entries_.find(ticket);
    if (it != running_entries_.end()) {
      --queues_[it->second.queue].running;
      running_entries_.erase(it);
      --running_;
    }
  }
  slot_free_.NotifyAll();
}

void AdmissionController::Record(Report report) {
  common::MutexLock lock(mu_);
  report.seq = next_seq_++;
  reports_.push_back(std::move(report));
  while (reports_.size() > config_.max_report_history) reports_.pop_front();
}

std::vector<AdmissionController::Report> AdmissionController::reports() const {
  common::MutexLock lock(mu_);
  return {reports_.begin(), reports_.end()};
}

int AdmissionController::running() const {
  common::MutexLock lock(mu_);
  return running_;
}

size_t AdmissionController::queued() const {
  common::MutexLock lock(mu_);
  size_t total = 0;
  for (const QueueState& queue : queues_) total += queue.fifo.size();
  return total;
}

int AdmissionController::max_in_flight() const {
  common::MutexLock lock(mu_);
  return max_in_flight_;
}

uint64_t AdmissionController::admitted() const {
  common::MutexLock lock(mu_);
  return admitted_;
}

uint64_t AdmissionController::timeouts() const {
  common::MutexLock lock(mu_);
  return timeouts_;
}

uint64_t AdmissionController::hops() const {
  common::MutexLock lock(mu_);
  return hops_;
}

uint64_t AdmissionController::sqa_demotions() const {
  common::MutexLock lock(mu_);
  return sqa_demotions_;
}

std::vector<AdmissionController::QueueStats> AdmissionController::queue_stats()
    const {
  common::MutexLock lock(mu_);
  std::vector<QueueStats> stats;
  stats.reserve(queues_.size());
  for (const QueueState& queue : queues_) {
    QueueStats entry;
    entry.name = queue.config.name;
    entry.slots = queue.config.slots;
    entry.running = queue.running;
    entry.queued = queue.fifo.size();
    entry.max_in_flight = queue.max_in_flight;
    entry.admitted = queue.admitted;
    entry.timeouts = queue.timeouts;
    entry.hops_out = queue.hops_out;
    stats.push_back(std::move(entry));
  }
  return stats;
}

WorkloadManager::WorkloadManager(sim::Engine* engine, WlmConfig config)
    : engine_(engine), config_(SanitizeWlmConfig(std::move(config))) {}

void WorkloadManager::Submit(double service_seconds,
                             std::function<void(const QueryReport&)> done) {
  queue_.push_back({service_seconds, engine_->Now(), std::move(done)});
  Admit();
}

void WorkloadManager::Admit() {
  while (running_ < config_.concurrency_slots && !queue_.empty()) {
    Pending next = std::move(queue_.front());
    queue_.erase(queue_.begin());
    ++running_;
    // Smaller per-slot memory share slows each query down.
    const double effective =
        next.service_seconds *
        (1.0 + config_.per_slot_memory_penalty *
                   (config_.concurrency_slots - 1));
    const double start = engine_->Now();
    engine_->Schedule(effective, [this, next = std::move(next), start,
                                  effective] {
      QueryReport report;
      report.submitted_at = next.submitted_at;
      report.queued_seconds = start - next.submitted_at;
      report.exec_seconds = effective;
      report.finished_at = engine_->Now();
      reports_.push_back(report);
      while (reports_.size() > config_.max_report_history) {
        reports_.pop_front();
      }
      if (next.done) next.done(report);
      --running_;
      Admit();
    });
  }
}

}  // namespace sdw::cluster
