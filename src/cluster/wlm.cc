#include "cluster/wlm.h"

#include "common/logging.h"

namespace sdw::cluster {

WorkloadManager::WorkloadManager(sim::Engine* engine, WlmConfig config)
    : engine_(engine), config_(config) {
  SDW_CHECK(config.concurrency_slots >= 1);
}

void WorkloadManager::Submit(double service_seconds,
                             std::function<void(const QueryReport&)> done) {
  queue_.push_back({service_seconds, engine_->Now(), std::move(done)});
  Admit();
}

void WorkloadManager::Admit() {
  while (running_ < config_.concurrency_slots && !queue_.empty()) {
    Pending next = std::move(queue_.front());
    queue_.erase(queue_.begin());
    ++running_;
    // Smaller per-slot memory share slows each query down.
    const double effective =
        next.service_seconds *
        (1.0 + config_.per_slot_memory_penalty *
                   (config_.concurrency_slots - 1));
    const double start = engine_->Now();
    engine_->Schedule(effective, [this, next = std::move(next), start,
                                  effective] {
      QueryReport report;
      report.submitted_at = next.submitted_at;
      report.queued_seconds = start - next.submitted_at;
      report.exec_seconds = effective;
      report.finished_at = engine_->Now();
      reports_.push_back(report);
      if (next.done) next.done(report);
      --running_;
      Admit();
    });
  }
}

}  // namespace sdw::cluster
