#ifndef SDW_CLUSTER_CLUSTER_H_
#define SDW_CLUSTER_CLUSTER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "cluster/cost_model.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "replication/replication.h"
#include "storage/block_store.h"
#include "storage/table_shard.h"

namespace sdw::cluster {

class Cluster;

/// Cluster topology and storage knobs.
struct ClusterConfig {
  int num_nodes = 2;
  /// One slice per core of the node's processor (§2.1).
  int slices_per_node = 2;
  /// Worker threads in the shared execution pool that query execution
  /// and COPY fan slice work out on. -1 sizes it from the topology
  /// (total slices, capped at the host's hardware threads); 0 disables
  /// threading entirely — every "parallel" path runs inline, which is
  /// the serial arm of the bench comparisons.
  int exec_pool_threads = -1;
  storage::StorageOptions storage;
  /// Synchronous two-copy block replication across the node stores
  /// (§2.1). Requires >= 2 nodes; silently off on a single-node
  /// cluster (nowhere to put the secondary).
  bool replicate = false;
  replication::ReplicationConfig replication;
  uint64_t replication_seed = 42;
};

/// A compute node: one block device shared by its slices, one table
/// shard per (slice, table). The slice maps are internally locked so
/// snapshot readers can resolve shards while DDL runs on another
/// thread; the shards themselves version their chains (MVCC).
class ComputeNode {
 public:
  ComputeNode(int node_id, int num_slices, storage::StorageOptions options);
  ComputeNode(const ComputeNode&) = delete;
  ComputeNode& operator=(const ComputeNode&) = delete;

  int node_id() const { return node_id_; }
  int num_slices() const { return static_cast<int>(slices_.size()); }
  storage::BlockStore* store() { return &store_; }

  /// Creates the per-slice shards for a new table.
  Status CreateShards(const TableSchema& schema) SDW_EXCLUDES(mu_);

  /// Unlinks the table's shards from the slices and hands them to the
  /// caller. Blocks are NOT deleted here — a snapshot reader may still
  /// be scanning them; the cluster parks the shards on its dropped
  /// list until garbage collection proves them unpinned.
  Status DropShards(const std::string& table,
                    std::vector<std::shared_ptr<storage::TableShard>>* removed)
      SDW_EXCLUDES(mu_);

  /// The shard of `table` on local slice `slice`. The raw pointer is
  /// valid while the table exists; concurrent readers should take
  /// shard_ref instead.
  Result<storage::TableShard*> shard(int slice, const std::string& table)
      SDW_EXCLUDES(mu_);
  Result<std::shared_ptr<storage::TableShard>> shard_ref(
      int slice, const std::string& table) SDW_EXCLUDES(mu_);

 private:
  int node_id_;
  storage::StorageOptions options_;
  storage::BlockStore store_;
  mutable common::Mutex mu_{common::LockRank::kComputeNode};
  std::vector<std::map<std::string, std::shared_ptr<storage::TableShard>>>
      slices_ SDW_GUARDED_BY(mu_);
};

/// The tables a statement reads, pinned at one point in time: for each
/// table, one ShardRef per global slice. Scans resolve their shard and
/// version from here instead of the live maps, so a concurrent
/// DROP/COPY/VACUUM can neither change what the statement sees nor
/// reclaim the blocks under it.
///
/// Pinning itself is not atomic against concurrent installs — the
/// warehouse takes its data lock in shared mode around PinTables while
/// writers install under the exclusive mode, which is what makes the
/// pinned view statement-consistent.
struct ReadSnapshot {
  std::map<std::string, std::vector<storage::ShardRef>> tables;

  /// The pinned ref of (table, global slice), or nullptr if the table
  /// was not pinned (e.g. dropped before the pin).
  const storage::ShardRef* Find(const std::string& table, int slice) const;
};

/// Chain versions built off to the side by one mutating statement
/// (INSERT/COPY/VACUUM). Blocks are written to the stores at prepare
/// time, but no reader can see them until Cluster::CommitStaged
/// installs every pending head — the statement becomes visible
/// atomically. Destroying an uncommitted StagedWrite aborts it: the
/// prepared blocks are deleted again.
class StagedWrite {
 public:
  explicit StagedWrite(Cluster* cluster) : cluster_(cluster) {}
  ~StagedWrite();
  StagedWrite(const StagedWrite&) = delete;
  StagedWrite& operator=(const StagedWrite&) = delete;

  bool empty() const { return pending_.empty(); }
  bool committed() const { return committed_; }

 private:
  friend class Cluster;

  struct Pending {
    std::shared_ptr<storage::TableShard> shard;
    /// The head the statement built on — Install's expected version.
    storage::ShardSnapshot base;
    /// The staged replacement (chains appends across multiple runs).
    storage::ShardSnapshot next;
  };

  Pending* Find(const storage::TableShard* shard);

  Cluster* cluster_;
  std::vector<Pending> pending_;
  bool committed_ = false;
};

/// The data plane of one warehouse: a leader-side catalog plus compute
/// nodes partitioned into slices (§2.1, Figure 3). Rows are distributed
/// EVEN / KEY / ALL across slices on insert and sorted per slice by the
/// table's sort style. Query execution lives in QueryExecutor.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  const ClusterConfig& config() const { return config_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int total_slices() const {
    return num_nodes() * config_.slices_per_node;
  }

  Catalog* catalog() { return &catalog_; }
  const Catalog* catalog() const { return &catalog_; }
  ComputeNode* node(int i) { return nodes_[i].get(); }

  /// The shared slice-execution pool (never null; with
  /// exec_pool_threads = 0 it has no workers and runs tasks inline).
  common::ThreadPool* pool() { return pool_.get(); }

  /// Maps a global slice index to its (node, local slice).
  ComputeNode* NodeOfSlice(int global_slice) {
    return nodes_[global_slice / config_.slices_per_node].get();
  }
  int LocalSlice(int global_slice) const {
    return global_slice % config_.slices_per_node;
  }

  /// The shard of `table` on global slice `slice`.
  Result<storage::TableShard*> shard(int global_slice,
                                     const std::string& table);
  Result<std::shared_ptr<storage::TableShard>> shard_ref(
      int global_slice, const std::string& table);

  /// Pins the current version of every slice shard of `tables` into
  /// `out`. Tables missing from the catalog are skipped (the planner
  /// reports them). See ReadSnapshot for the atomicity contract.
  Status PinTables(const std::vector<std::string>& tables, ReadSnapshot* out);

  /// DDL. DropTable unlinks the table immediately but defers block
  /// deletion to CollectGarbage so pinned snapshot readers finish
  /// their scans.
  Status CreateTable(const TableSchema& schema);
  Status DropTable(const std::string& table);

  /// Distributes one run of rows across slices per the table's
  /// DISTSTYLE, sorts each slice's portion per its SORTKEY, and appends.
  /// With `staged` the new blocks stay invisible until CommitStaged;
  /// without it each shard installs immediately (single-threaded
  /// callers). Rejected while the cluster is read-only (§3.1).
  Status InsertRows(const std::string& table,
                    const std::vector<ColumnVector>& columns,
                    StagedWrite* staged = nullptr) SDW_EXCLUDES(mu_);

  /// Recomputes table statistics (row count, min/max, NDV estimate)
  /// from the stored data — the ANALYZE that COPY runs implicitly.
  Status Analyze(const std::string& table);

  /// Re-sorts and rewrites every slice's shard. Each COPY sorts its own
  /// run, so a table loaded in many increments accumulates overlapping
  /// sorted runs whose zone maps prune poorly; VACUUM merges them back
  /// into one fully-sorted region (the paper's §3.2 future work makes
  /// this self-triggering; here it is the classic user-initiated op).
  /// With `staged` the rewrite is prepared but not installed; without
  /// it the new chains install immediately and unpinned old versions
  /// are reclaimed. Returns the number of blocks rewritten.
  Result<uint64_t> Vacuum(const std::string& table,
                          StagedWrite* staged = nullptr);

  /// Installs every shard head a staged statement prepared. The caller
  /// serializes writers and brackets this with its snapshot-coherence
  /// lock so readers pin either all of the statement or none of it.
  /// `barrier`, if set, runs after each head installs (with the count
  /// installed so far) and aborts the rest of the commit on error —
  /// the chaos layer's mid-multi-shard-install crash point. Heads
  /// already installed are live (readers may pin them) and are NOT
  /// rolled back on an aborted commit: recovery replays the whole
  /// statement from the commit log.
  Status CommitStaged(StagedWrite* staged,
                      const std::function<Status(size_t)>& barrier = nullptr);

  /// Deletes the blocks a staged statement prepared (statement failed
  /// or was abandoned). Also runs from StagedWrite's destructor.
  void AbortStaged(StagedWrite* staged);

  /// Reclaims storage no snapshot can reach anymore: retired shard
  /// versions (VACUUM rewrites, rollbacks) and dropped tables whose
  /// readers have drained. Replication placements of reclaimed blocks
  /// are removed with them.
  struct GcStats {
    uint64_t versions_reclaimed = 0;
    uint64_t blocks_reclaimed = 0;
    /// Retired versions still pinned by a snapshot after the sweep.
    uint64_t versions_deferred = 0;
    uint64_t dropped_shards_reclaimed = 0;
    uint64_t dropped_shards_deferred = 0;
  };
  GcStats CollectGarbage() SDW_EXCLUDES(mu_);

  /// How much reclaimable-but-unreclaimed storage has accumulated:
  /// retired chain versions on live and dropped shards plus parked
  /// dropped shards. The health sweep thresholds on this to make GC
  /// self-triggering instead of relying on explicit calls.
  uint64_t PendingGarbage() SDW_EXCLUDES(mu_);

  /// The EVEN-distribution round-robin cursor of a table (0 when the
  /// table never inserted). Captured into backup manifests and restored
  /// before a commit-log replay so re-executed inserts land on the same
  /// slices the original run chose.
  uint64_t round_robin_cursor(const std::string& table) const
      SDW_EXCLUDES(mu_);
  void set_round_robin_cursor(const std::string& table, uint64_t cursor)
      SDW_EXCLUDES(mu_);

  /// Total rows of a table across all slices.
  Result<uint64_t> TotalRows(const std::string& table);

  /// Resize (§3.1): provisions a target cluster, puts this cluster in
  /// read-only mode, runs a parallel node-to-node copy, and returns the
  /// target. The source remains readable throughout.
  struct ResizeStats {
    uint64_t bytes_moved = 0;
    /// Modeled wall-clock of the parallel copy.
    double modeled_seconds = 0;
  };
  /// `on_target_created` (optional) runs on the freshly provisioned
  /// target before any data copies — the hook encryption uses to
  /// install its at-rest transforms.
  Result<std::unique_ptr<Cluster>> Resize(
      int new_num_nodes, ResizeStats* stats,
      const std::function<void(Cluster*)>& on_target_created = nullptr);

  bool read_only() const {
    return read_only_.load(std::memory_order_relaxed);
  }
  void set_read_only(bool ro) {
    read_only_.store(ro, std::memory_order_relaxed);
  }

  /// Interconnect accounting (bytes that crossed node boundaries).
  /// Atomic: COPY and queries may account from pool workers.
  void AddNetworkBytes(uint64_t bytes) {
    network_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  uint64_t network_bytes() const {
    return network_bytes_.load(std::memory_order_relaxed);
  }
  void ResetNetworkBytes() {
    network_bytes_.store(0, std::memory_order_relaxed);
  }

  /// Total encoded bytes stored across the cluster.
  uint64_t TotalStoredBytes() const;

  // --- fault tolerance (§2.1) ---

  /// The replication manager over the node stores, or nullptr when
  /// replication is off (single node / replicate=false).
  replication::ReplicationManager* replication() {
    return replication_.get();
  }

  /// Last-resort read path behind replication: when no live replica of
  /// a block exists, the cluster page-faults it from here (the S3
  /// streaming-restore path of §2.3). Installing a handler wires every
  /// node store's fault handler through the cluster masking chain.
  void set_page_fault_handler(storage::BlockStore::FaultHandler handler)
      SDW_EXCLUDES(mu_);

  /// Simulates whole-node loss: all the node's blocks vanish and the
  /// node is marked failed for replication. Queries keep working
  /// through masked reads; the warehouse health sweep recovers it.
  void FailNode(int node);

  /// Reads served from a secondary replica after a local media failure
  /// (the §2.1 read path customers never notice).
  uint64_t masked_reads() const {
    return masked_reads_.load(std::memory_order_relaxed);
  }
  /// Reads that fell through to the page-fault (S3) path.
  uint64_t s3_fault_reads() const {
    return s3_fault_reads_.load(std::memory_order_relaxed);
  }
  /// Local read failures observed on a node since the last reset — the
  /// health signal the warehouse sweep thresholds on.
  uint64_t node_read_failures(int node) const {
    return node_read_failures_[node].load(std::memory_order_relaxed);
  }
  void ResetNodeReadFailures(int node) {
    node_read_failures_[node].store(0, std::memory_order_relaxed);
  }

 private:
  /// Routes every node store's read-miss through the masking chain:
  /// secondary replica first, then the page-fault handler.
  void WireReadPath() SDW_EXCLUDES(mu_);

  /// The fault handler of node `node`'s store: masks a local media
  /// failure from the secondary replica, then from the page-fault
  /// (S3) path. Strikes the node's failure counter for tracked blocks.
  Result<Bytes> FaultRead(int node, storage::BlockId id) SDW_EXCLUDES(mu_);
  /// Chooses the target global slice for row i of a KEY-distributed
  /// table.
  int SliceForKey(const Datum& key) const;

  /// A dropped table's shard awaiting its last reader before its
  /// blocks leave `store`.
  struct DroppedShard {
    std::shared_ptr<storage::TableShard> shard;
    storage::BlockStore* store;
  };

  ClusterConfig config_;
  Catalog catalog_;
  std::vector<std::unique_ptr<ComputeNode>> nodes_;
  std::unique_ptr<common::ThreadPool> pool_;
  std::unique_ptr<replication::ReplicationManager> replication_;
  /// Guards the cluster's mutable routing state — the per-table
  /// round-robin cursors and the page-fault handler (installed after
  /// construction, read by fault handlers on any worker) — plus the
  /// dropped-shard GC list, and serializes InsertRows end to end:
  /// cursor advance and shard appends commit together. The append loop
  /// only writes (store Put), so it cannot re-enter FaultRead and
  /// deadlock. FaultRead copies the handler out before invoking it —
  /// it reaches S3 / other stores and must not run under mu_.
  mutable common::Mutex mu_{common::LockRank::kClusterRouting};
  storage::BlockStore::FaultHandler page_fault_ SDW_GUARDED_BY(mu_);
  std::map<std::string, uint64_t> round_robin_ SDW_GUARDED_BY(mu_);
  std::vector<DroppedShard> dropped_ SDW_GUARDED_BY(mu_);
  std::atomic<bool> read_only_{false};
  std::atomic<uint64_t> network_bytes_{0};
  std::atomic<uint64_t> masked_reads_{0};
  std::atomic<uint64_t> s3_fault_reads_{0};
  std::vector<std::atomic<uint64_t>> node_read_failures_;
};

/// Estimated wire size of a batch's columns (used for network
/// accounting of shuffles, broadcasts and leader returns).
uint64_t EstimateBytes(const std::vector<ColumnVector>& columns);

}  // namespace sdw::cluster

#endif  // SDW_CLUSTER_CLUSTER_H_
