#ifndef SDW_CLUSTER_COST_MODEL_H_
#define SDW_CLUSTER_COST_MODEL_H_

#include <cstdint>

namespace sdw::cluster {

/// Analytical cost model used to extrapolate laptop-scale measurements
/// to the paper's cluster scales (the T1/EDW case-study bench) and to
/// time simulated admin operations. Defaults approximate a 2013-era
/// dense-storage node (DW1.8XL-ish): the *shapes* of the results, not
/// the absolute numbers, are what the reproduction checks.
struct CostModel {
  /// Per-slice scan+decode+filter throughput over compressed data.
  double slice_scan_bytes_per_sec = 250e6;
  /// Per-slice COPY ingest throughput (parse + distribute + sort +
  /// encode) over raw input bytes.
  double slice_ingest_bytes_per_sec = 60e6;
  /// Per-node effective network bandwidth (10 GbE duplex, protocol
  /// overhead included).
  double node_network_bytes_per_sec = 1.0e9;
  /// Per-node aggregate local disk bandwidth.
  double node_disk_bytes_per_sec = 2.0e9;
  /// Per-node S3 backup/restore throughput (paper: backups are
  /// parallelized per node).
  double node_s3_bytes_per_sec = 300e6;
  /// Fixed per-query cost of generating + compiling the query binary at
  /// the leader (§2.1: "a fixed overhead per query").
  double query_compile_seconds = 2.0;
  /// Per-row leader-side result handling cost.
  double leader_row_seconds = 2e-8;

  /// Seconds to move `bytes` across the interconnect when `nodes` nodes
  /// send in parallel.
  double NetworkSeconds(uint64_t bytes, int nodes) const {
    if (bytes == 0) return 0.0;
    return static_cast<double>(bytes) /
           (node_network_bytes_per_sec * (nodes < 1 ? 1 : nodes));
  }

  /// Seconds for `nodes` nodes to push `bytes` to/from S3 in parallel.
  double S3Seconds(uint64_t bytes, int nodes) const {
    if (bytes == 0) return 0.0;
    return static_cast<double>(bytes) /
           (node_s3_bytes_per_sec * (nodes < 1 ? 1 : nodes));
  }

  /// Estimated execution seconds of a scan query over `bytes` of table
  /// data spread across `slices` parallel slices — the signal the WLM's
  /// short-query fast lane admits on (DESIGN.md §4k). Deliberately
  /// compile-cost-free: SQA ranks the scan work itself, and the
  /// estimate must stay comparable across exec configurations.
  double ScanEstimateSeconds(uint64_t bytes, int slices) const {
    if (bytes == 0) return 0.0;
    return static_cast<double>(bytes) /
           (slice_scan_bytes_per_sec * (slices < 1 ? 1 : slices));
  }
};

}  // namespace sdw::cluster

#endif  // SDW_CLUSTER_COST_MODEL_H_
