#include "zorder/zorder.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.h"

namespace sdw::zorder {

uint64_t Interleave(const std::vector<uint32_t>& coords) {
  const size_t ndims = coords.size();
  SDW_CHECK(ndims >= 1 && ndims <= 8) << "z-order supports 1..8 dims";
  const int bits = BitsPerDim(ndims);
  uint64_t key = 0;
  for (int j = 0; j < bits; ++j) {
    for (size_t d = 0; d < ndims; ++d) {
      uint64_t bit = (coords[d] >> j) & 1u;
      key |= bit << (static_cast<size_t>(j) * ndims + d);
    }
  }
  return key;
}

std::vector<uint32_t> Deinterleave(uint64_t key, size_t ndims) {
  SDW_CHECK(ndims >= 1 && ndims <= 8);
  const int bits = BitsPerDim(ndims);
  std::vector<uint32_t> coords(ndims, 0);
  for (int j = 0; j < bits; ++j) {
    for (size_t d = 0; d < ndims; ++d) {
      uint32_t bit =
          static_cast<uint32_t>((key >> (static_cast<size_t>(j) * ndims + d)) & 1u);
      coords[d] |= bit << j;
    }
  }
  return coords;
}

ZOrderMapper::ZOrderMapper(std::vector<Dimension> dims)
    : dims_(std::move(dims)), bits_per_dim_(BitsPerDim(dims_.size())) {}

Result<ZOrderMapper> ZOrderMapper::Create(std::vector<Dimension> dims) {
  if (dims.empty() || dims.size() > 8) {
    return Status::InvalidArgument("z-order mapper needs 1..8 dimensions");
  }
  return ZOrderMapper(std::move(dims));
}

uint32_t ZOrderMapper::MapValue(size_t d, const Datum& value) const {
  SDW_DCHECK(d < dims_.size());
  const Dimension& dim = dims_[d];
  const uint64_t max_coord =
      bits_per_dim_ >= 32 ? 0xffffffffull : ((1ull << bits_per_dim_) - 1);
  if (value.is_null()) return 0;  // NULLs sort first on every dimension
  if (dim.type == TypeId::kString) {
    // Big-endian ordinal of the first 4 bytes preserves lexicographic
    // order at 4-byte granularity.
    const std::string& s = value.string_value();
    uint32_t ordinal = 0;
    for (int b = 0; b < 4; ++b) {
      ordinal = (ordinal << 8) |
                (static_cast<size_t>(b) < s.size()
                     ? static_cast<uint8_t>(s[b])
                     : 0);
    }
    return static_cast<uint32_t>(
        (static_cast<uint64_t>(ordinal) * max_coord) >> 32);
  }
  double v = value.AsDouble();
  if (dim.max <= dim.min) return 0;
  double scaled = (v - dim.min) / (dim.max - dim.min);
  scaled = std::clamp(scaled, 0.0, 1.0);
  return static_cast<uint32_t>(scaled * static_cast<double>(max_coord));
}

uint64_t ZOrderMapper::MapRow(const std::vector<Datum>& values) const {
  SDW_CHECK(values.size() == dims_.size());
  std::vector<uint32_t> coords(dims_.size());
  for (size_t d = 0; d < dims_.size(); ++d) {
    coords[d] = MapValue(d, values[d]);
  }
  return Interleave(coords);
}

Result<std::vector<uint64_t>> ZOrderMapper::MapColumns(
    const std::vector<const ColumnVector*>& columns) const {
  if (columns.size() != dims_.size()) {
    return Status::InvalidArgument("column count != dimension count");
  }
  const size_t n = columns.empty() ? 0 : columns[0]->size();
  for (const auto* c : columns) {
    if (c->size() != n) {
      return Status::InvalidArgument("ragged sort-key columns");
    }
  }
  std::vector<uint64_t> keys(n);
  std::vector<uint32_t> coords(dims_.size());
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dims_.size(); ++d) {
      coords[d] = MapValue(d, columns[d]->DatumAt(i));
    }
    keys[i] = Interleave(coords);
  }
  return keys;
}

Result<ZOrderMapper> BuildMapperFromColumns(
    const std::vector<const ColumnVector*>& columns) {
  std::vector<ZOrderMapper::Dimension> dims;
  for (const auto* c : columns) {
    ZOrderMapper::Dimension dim;
    dim.type = c->type();
    if (c->type() != TypeId::kString) {
      bool first = true;
      for (size_t i = 0; i < c->size(); ++i) {
        if (c->IsNull(i)) continue;
        double v = c->DatumAt(i).AsDouble();
        if (first) {
          dim.min = dim.max = v;
          first = false;
        } else {
          dim.min = std::min(dim.min, v);
          dim.max = std::max(dim.max, v);
        }
      }
    }
    dims.push_back(dim);
  }
  return ZOrderMapper::Create(std::move(dims));
}

}  // namespace sdw::zorder
