#ifndef SDW_ZORDER_ZORDER_H_
#define SDW_ZORDER_ZORDER_H_

#include <cstdint>
#include <vector>

#include "catalog/types.h"
#include "common/result.h"

namespace sdw::zorder {

/// Interleaves the low `bits_per_dim` bits of each coordinate into a
/// single Morton (z-curve) key: bit j of dimension d lands at position
/// j * ndims + d. Up to 8 dimensions; bits_per_dim = 64 / ndims.
uint64_t Interleave(const std::vector<uint32_t>& coords);

/// Inverse of Interleave for `ndims` dimensions.
std::vector<uint32_t> Deinterleave(uint64_t key, size_t ndims);

/// Number of coordinate bits available per dimension for `ndims`
/// (coordinates are 32-bit, so capped at 32).
inline int BitsPerDim(size_t ndims) {
  if (ndims == 0) return 0;
  const int bits = static_cast<int>(64 / ndims);
  return bits > 32 ? 32 : bits;
}

/// Maps column values onto the z-curve coordinate space. For numeric
/// columns the [min, max] range observed at build time is scaled
/// linearly onto [0, 2^bits); strings use their first bytes as a
/// big-endian ordinal. This is what the paper means by interleaved sort
/// keys "degrading gracefully": the mapping needs only coarse
/// per-column ranges, not projections or index maintenance (§3.3).
class ZOrderMapper {
 public:
  /// One dimension's calibration.
  struct Dimension {
    TypeId type = TypeId::kInt64;
    // Numeric calibration (ints and doubles).
    double min = 0.0;
    double max = 0.0;
  };

  /// Builds a mapper over the given dimensions; 1..8 dimensions.
  static Result<ZOrderMapper> Create(std::vector<Dimension> dims);

  size_t num_dims() const { return dims_.size(); }
  int bits_per_dim() const { return bits_per_dim_; }

  /// Maps one value of dimension d to its z-coordinate.
  uint32_t MapValue(size_t d, const Datum& value) const;

  /// Computes the z-key for a full row of sort-key values.
  uint64_t MapRow(const std::vector<Datum>& values) const;

  /// Vectorized keying: one key per row from parallel column vectors.
  Result<std::vector<uint64_t>> MapColumns(
      const std::vector<const ColumnVector*>& columns) const;

 private:
  explicit ZOrderMapper(std::vector<Dimension> dims);

  std::vector<Dimension> dims_;
  int bits_per_dim_ = 0;
};

/// Convenience: calibrates dimensions from the min/max of the given
/// columns and returns the mapper.
Result<ZOrderMapper> BuildMapperFromColumns(
    const std::vector<const ColumnVector*>& columns);

}  // namespace sdw::zorder

#endif  // SDW_ZORDER_ZORDER_H_
