#ifndef SDW_REPLICATION_REPLICATION_H_
#define SDW_REPLICATION_REPLICATION_H_

#include <map>
#include <set>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "storage/block_store.h"

namespace sdw::replication {

/// Replication knobs.
struct ReplicationConfig {
  /// Nodes are partitioned into cohorts of this many nodes; a block's
  /// secondary lives on another node of its primary's cohort. Cohorting
  /// "limit[s] the number of slices impacted by an individual disk or
  /// node failure", trading re-replication fan-out against the
  /// probability of correlated failures (§2.1).
  int cohort_size = 2;
};

/// Synchronous two-copy block replication across node block devices
/// with cohort-constrained placement, read-time failure masking and
/// re-replication (§2.1: "each data block is synchronously written to
/// both its primary slice as well as to at least one secondary on a
/// separate node").
class ReplicationManager {
 public:
  ReplicationManager(std::vector<storage::BlockStore*> node_stores,
                     ReplicationConfig config = {}, uint64_t seed = 42);

  int num_nodes() const { return static_cast<int>(stores_.size()); }

  /// Cohort index of a node.
  int CohortOf(int node) const { return node / config_.cohort_size; }

  /// Nodes in the same cohort as `node` (excluding it).
  std::vector<int> CohortPeers(int node) const;

  /// Writes a block: primary copy on `primary_node`, secondary on a
  /// cohort peer (round-robin). Synchronous — both copies or error.
  Result<storage::BlockId> Write(int primary_node, Bytes data);

  /// Reads a block, masking media failures: primary first, then the
  /// secondary (the read path customers never notice, §2.1).
  Result<Bytes> Read(storage::BlockId id);

  /// Simulates whole-node media loss: all its blocks vanish.
  void FailNode(int node);

  /// Restores two-copy redundancy for every under-replicated block by
  /// copying from the surviving replica to another cohort peer.
  /// Returns the number of blocks re-replicated.
  Result<int> ReReplicate();

  /// Copies of a block currently readable.
  int ReplicaCount(storage::BlockId id);

  /// True if at least one copy survives.
  bool IsReadable(storage::BlockId id) { return ReplicaCount(id) > 0; }

  /// Nodes holding any replica that re-replication of `failed_node`
  /// would read from — the failure's blast radius.
  std::set<int> BlastRadius(int failed_node) const;

  /// All tracked block ids.
  std::vector<storage::BlockId> AllBlocks() const;

  /// Which nodes hold block `id` per metadata (placement, not health).
  struct Placement {
    int primary = -1;
    int secondary = -1;
  };
  Result<Placement> GetPlacement(storage::BlockId id) const;

 private:
  /// Picks the secondary node for a new block on `primary`.
  int PickSecondary(int primary);

  std::vector<storage::BlockStore*> stores_;
  ReplicationConfig config_;
  Rng rng_;
  std::map<storage::BlockId, Placement> placements_;
  std::vector<uint64_t> rr_counter_;
  std::set<int> failed_nodes_;
};

}  // namespace sdw::replication

#endif  // SDW_REPLICATION_REPLICATION_H_
