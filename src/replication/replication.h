#ifndef SDW_REPLICATION_REPLICATION_H_
#define SDW_REPLICATION_REPLICATION_H_

#include <atomic>
#include <map>
#include <set>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "storage/block_store.h"

namespace sdw::replication {

/// Replication knobs.
struct ReplicationConfig {
  /// Nodes are partitioned into cohorts of this many nodes; a block's
  /// secondary lives on another node of its primary's cohort. Cohorting
  /// "limit[s] the number of slices impacted by an individual disk or
  /// node failure", trading re-replication fan-out against the
  /// probability of correlated failures (§2.1).
  int cohort_size = 2;
};

/// Synchronous two-copy block replication across node block devices
/// with cohort-constrained placement, read-time failure masking and
/// re-replication (§2.1: "each data block is synchronously written to
/// both its primary slice as well as to at least one secondary on a
/// separate node").
///
/// Thread-safe: slices of every node write and mask reads through one
/// manager concurrently. Placement metadata sits behind a mutex that
/// is never held across store calls (stores have their own locks and
/// fault handlers may route back here).
class ReplicationManager {
 public:
  ReplicationManager(std::vector<storage::BlockStore*> node_stores,
                     ReplicationConfig config = {}, uint64_t seed = 42);

  int num_nodes() const { return static_cast<int>(stores_.size()); }

  /// Cohort index of a node.
  int CohortOf(int node) const { return node / config_.cohort_size; }

  /// Nodes in the same cohort as `node` (excluding it).
  std::vector<int> CohortPeers(int node) const;

  /// Writes a block: primary copy on `primary_node`, secondary on a
  /// healthy cohort peer (round-robin). If the secondary copy cannot
  /// land (peer failed mid-put, or no healthy peer at all), the write
  /// degrades to a tracked single-copy placement instead of leaking an
  /// orphaned primary copy — ReReplicate() heals it later.
  Result<storage::BlockId> Write(int primary_node, Bytes data)
      SDW_EXCLUDES(mu_);

  /// Records and replicates a block whose primary copy was already
  /// written to `primary_node`'s store by someone else (the put
  /// observer of a cluster node). `stored` is the stored/raw form;
  /// the secondary copy lands via PutRaw so at-rest transforms are
  /// not applied twice. Degrades to single-copy like Write.
  Status Replicate(int primary_node, storage::BlockId id,
                   const Bytes& stored) SDW_EXCLUDES(mu_);

  /// Reads a block, masking media failures: primary first, then the
  /// secondary (the read path customers never notice, §2.1).
  Result<Bytes> Read(storage::BlockId id) SDW_EXCLUDES(mu_);

  /// Stored/raw bytes of `id` from any healthy replica other than
  /// `exclude_node` — the masked-read path a node's fault handler uses
  /// (it must never read through itself). Replica reads are
  /// resident-only (GetStored) so two failed nodes cannot recurse into
  /// each other's fault handlers. NotFound if the block is untracked.
  Result<Bytes> ReadReplicaExcluding(storage::BlockId id, int exclude_node)
      SDW_EXCLUDES(mu_);

  /// True if `id` has a placement record (written through replication).
  bool HasPlacement(storage::BlockId id) const SDW_EXCLUDES(mu_);

  /// Marks a node failed for placement/read purposes without touching
  /// its store — what the health loop uses on an unreachable node.
  void MarkNodeFailed(int node) SDW_EXCLUDES(mu_);

  /// Simulates whole-node media loss: marks the node failed AND drops
  /// all its blocks.
  void FailNode(int node) SDW_EXCLUDES(mu_);

  /// The node was replaced (control-plane workflow) and rejoined
  /// empty-but-healthy: clears the failed mark so placement and
  /// re-replication can use it again.
  void RestoreNode(int node) SDW_EXCLUDES(mu_);

  bool IsNodeFailed(int node) const SDW_EXCLUDES(mu_);
  std::vector<int> FailedNodes() const SDW_EXCLUDES(mu_);

  /// Restores two-copy redundancy for every under-replicated block by
  /// copying from the surviving replica to another cohort peer.
  /// Returns the number of blocks re-replicated. A block whose copy
  /// fails (transient device fault) is skipped — logged, counted in
  /// sdw_repl_rereplicate_skipped, retried by the next sweep — so one
  /// bad block never aborts healing of the rest.
  Result<int> ReReplicate() SDW_EXCLUDES(mu_);

  /// Drops every live copy of a block and forgets its placement
  /// (vacuum / DROP TABLE cleanup — without this the secondary copy
  /// would leak).
  void Remove(storage::BlockId id) SDW_EXCLUDES(mu_);

  /// Copies of a block currently readable.
  int ReplicaCount(storage::BlockId id) SDW_EXCLUDES(mu_);

  /// True if at least one copy survives.
  bool IsReadable(storage::BlockId id) { return ReplicaCount(id) > 0; }

  /// Tracked blocks currently down to exactly one live copy (degraded
  /// but serving) and to zero copies (lost; backup's job).
  int CountSingleCopyBlocks();
  int CountLostBlocks();

  /// Nodes holding any replica that re-replication of `failed_node`
  /// would read from — the failure's blast radius.
  std::set<int> BlastRadius(int failed_node) const SDW_EXCLUDES(mu_);

  /// All tracked block ids.
  std::vector<storage::BlockId> AllBlocks() const SDW_EXCLUDES(mu_);

  /// Which nodes hold block `id` per metadata (placement, not health).
  struct Placement {
    int primary = -1;
    int secondary = -1;
  };
  Result<Placement> GetPlacement(storage::BlockId id) const SDW_EXCLUDES(mu_);

  // --- accounting ---

  /// Writes that landed with one copy only (secondary put failed or no
  /// healthy peer was available).
  uint64_t degraded_writes() const {
    return degraded_writes_.load(std::memory_order_relaxed);
  }

  /// Reads served from a non-primary replica.
  uint64_t masked_reads() const {
    return masked_reads_.load(std::memory_order_relaxed);
  }

 private:
  /// Picks the secondary node for a new block on `primary`: a healthy
  /// cohort peer round-robin, any healthy node if the cohort is
  /// exhausted, -1 if the fleet has no healthy peer at all.
  int PickSecondaryLocked(int primary) SDW_REQUIRES(mu_);

  void RecordPlacementLocked(storage::BlockId id, int primary,
                             int secondary) SDW_REQUIRES(mu_);

  std::vector<storage::BlockStore*> stores_;
  ReplicationConfig config_;

  mutable common::Mutex mu_{common::LockRank::kReplication};
  Rng rng_ SDW_GUARDED_BY(mu_);
  std::map<storage::BlockId, Placement> placements_ SDW_GUARDED_BY(mu_);
  std::vector<uint64_t> rr_counter_ SDW_GUARDED_BY(mu_);
  std::set<int> failed_nodes_ SDW_GUARDED_BY(mu_);

  std::atomic<uint64_t> degraded_writes_{0};
  std::atomic<uint64_t> masked_reads_{0};
};

}  // namespace sdw::replication

#endif  // SDW_REPLICATION_REPLICATION_H_
