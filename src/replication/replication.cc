#include "replication/replication.h"

#include "common/logging.h"

namespace sdw::replication {

ReplicationManager::ReplicationManager(
    std::vector<storage::BlockStore*> node_stores, ReplicationConfig config,
    uint64_t seed)
    : stores_(std::move(node_stores)), config_(config), rng_(seed) {
  SDW_CHECK(config_.cohort_size >= 2) << "cohorts need >= 2 nodes";
  SDW_CHECK(stores_.size() >= 2) << "replication needs >= 2 nodes";
  rr_counter_.assign(stores_.size(), 0);
}

std::vector<int> ReplicationManager::CohortPeers(int node) const {
  std::vector<int> peers;
  const int cohort = CohortOf(node);
  for (int n = 0; n < num_nodes(); ++n) {
    if (n != node && CohortOf(n) == cohort) peers.push_back(n);
  }
  return peers;
}

int ReplicationManager::PickSecondary(int primary) {
  std::vector<int> peers = CohortPeers(primary);
  // A trailing partial cohort may be a singleton; fall back to any other
  // node so the copy still lands off-node.
  if (peers.empty()) {
    int other = (primary + 1) % num_nodes();
    return other;
  }
  return peers[rr_counter_[primary]++ % peers.size()];
}

Result<storage::BlockId> ReplicationManager::Write(int primary_node,
                                                   Bytes data) {
  if (primary_node < 0 || primary_node >= num_nodes()) {
    return Status::InvalidArgument("bad primary node");
  }
  if (failed_nodes_.count(primary_node)) {
    return Status::Unavailable("primary node is failed");
  }
  const storage::BlockId id = storage::BlockStore::Allocate();
  const int secondary = PickSecondary(primary_node);
  SDW_RETURN_IF_ERROR(stores_[primary_node]->Put(id, data));
  SDW_RETURN_IF_ERROR(stores_[secondary]->Put(id, std::move(data)));
  placements_[id] = {primary_node, secondary};
  return id;
}

Result<Bytes> ReplicationManager::Read(storage::BlockId id) {
  auto it = placements_.find(id);
  if (it == placements_.end()) {
    return Status::NotFound("unknown block " + std::to_string(id));
  }
  const Placement& p = it->second;
  if (p.primary >= 0 && !failed_nodes_.count(p.primary)) {
    auto primary_read = stores_[p.primary]->Get(id);
    if (primary_read.ok()) return primary_read;
  }
  if (p.secondary >= 0 && !failed_nodes_.count(p.secondary)) {
    auto secondary_read = stores_[p.secondary]->Get(id);
    if (secondary_read.ok()) return secondary_read;
  }
  return Status::Unavailable("all replicas of block " + std::to_string(id) +
                             " are lost");
}

void ReplicationManager::FailNode(int node) {
  failed_nodes_.insert(node);
  for (storage::BlockId id : stores_[node]->ListIds()) {
    stores_[node]->DropForTest(id);
  }
}

Result<int> ReplicationManager::ReReplicate() {
  int restored = 0;
  for (auto& [id, placement] : placements_) {
    const bool primary_ok =
        placement.primary >= 0 && !failed_nodes_.count(placement.primary) &&
        stores_[placement.primary]->Contains(id);
    const bool secondary_ok =
        placement.secondary >= 0 &&
        !failed_nodes_.count(placement.secondary) &&
        stores_[placement.secondary]->Contains(id);
    if (primary_ok && secondary_ok) continue;
    if (!primary_ok && !secondary_ok) continue;  // lost; backup's job now
    const int survivor = primary_ok ? placement.primary : placement.secondary;
    // New home: a healthy cohort peer of the survivor.
    int target = -1;
    for (int peer : CohortPeers(survivor)) {
      if (!failed_nodes_.count(peer) && !stores_[peer]->Contains(id)) {
        target = peer;
        break;
      }
    }
    if (target < 0) {
      // Cohort exhausted: place anywhere healthy.
      for (int n = 0; n < num_nodes(); ++n) {
        if (n != survivor && !failed_nodes_.count(n) &&
            !stores_[n]->Contains(id)) {
          target = n;
          break;
        }
      }
    }
    if (target < 0) continue;
    SDW_ASSIGN_OR_RETURN(Bytes data, stores_[survivor]->Get(id));
    SDW_RETURN_IF_ERROR(stores_[target]->Put(id, std::move(data)));
    if (primary_ok) {
      placement.secondary = target;
    } else {
      placement.primary = target;
    }
    ++restored;
  }
  return restored;
}

int ReplicationManager::ReplicaCount(storage::BlockId id) {
  auto it = placements_.find(id);
  if (it == placements_.end()) return 0;
  int count = 0;
  for (int node : {it->second.primary, it->second.secondary}) {
    if (node >= 0 && !failed_nodes_.count(node) &&
        stores_[node]->Contains(id)) {
      ++count;
    }
  }
  return count;
}

std::set<int> ReplicationManager::BlastRadius(int failed_node) const {
  std::set<int> impacted;
  for (const auto& [id, placement] : placements_) {
    if (placement.primary == failed_node && placement.secondary >= 0) {
      impacted.insert(placement.secondary);
    }
    if (placement.secondary == failed_node && placement.primary >= 0) {
      impacted.insert(placement.primary);
    }
  }
  return impacted;
}

std::vector<storage::BlockId> ReplicationManager::AllBlocks() const {
  std::vector<storage::BlockId> ids;
  ids.reserve(placements_.size());
  for (const auto& [id, _] : placements_) ids.push_back(id);
  return ids;
}

Result<ReplicationManager::Placement> ReplicationManager::GetPlacement(
    storage::BlockId id) const {
  auto it = placements_.find(id);
  if (it == placements_.end()) return Status::NotFound("unknown block");
  return it->second;
}

}  // namespace sdw::replication
