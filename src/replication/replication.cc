#include "replication/replication.h"

#include <string>

#include "common/logging.h"
#include "obs/registry.h"

namespace sdw::replication {

ReplicationManager::ReplicationManager(
    std::vector<storage::BlockStore*> node_stores, ReplicationConfig config,
    uint64_t seed)
    : stores_(std::move(node_stores)), config_(config), rng_(seed) {
  SDW_CHECK(config_.cohort_size >= 2) << "cohorts need >= 2 nodes";
  SDW_CHECK(stores_.size() >= 2) << "replication needs >= 2 nodes";
  rr_counter_.assign(stores_.size(), 0);
}

std::vector<int> ReplicationManager::CohortPeers(int node) const {
  std::vector<int> peers;
  const int cohort = CohortOf(node);
  for (int n = 0; n < num_nodes(); ++n) {
    if (n != node && CohortOf(n) == cohort) peers.push_back(n);
  }
  return peers;
}

int ReplicationManager::PickSecondaryLocked(int primary) {
  std::vector<int> peers;
  for (int peer : CohortPeers(primary)) {
    if (!failed_nodes_.count(peer)) peers.push_back(peer);
  }
  if (!peers.empty()) {
    return peers[rr_counter_[primary]++ % peers.size()];
  }
  // Cohort exhausted (trailing singleton cohort, or every peer failed):
  // fall back to any healthy node so the copy still lands off-node.
  for (int offset = 1; offset < num_nodes(); ++offset) {
    const int other = (primary + offset) % num_nodes();
    if (!failed_nodes_.count(other)) return other;
  }
  return -1;
}

void ReplicationManager::RecordPlacementLocked(storage::BlockId id,
                                               int primary, int secondary) {
  placements_[id] = {primary, secondary};
  if (secondary < 0) {
    degraded_writes_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* degraded =
        obs::Registry::Global().counter("sdw_repl_degraded_writes");
    degraded->Add();
  }
}

Result<storage::BlockId> ReplicationManager::Write(int primary_node,
                                                   Bytes data) {
  if (primary_node < 0 || primary_node >= num_nodes()) {
    return Status::InvalidArgument("bad primary node");
  }
  int secondary;
  {
    common::MutexLock lock(mu_);
    if (failed_nodes_.count(primary_node)) {
      return Status::Unavailable("primary node is failed");
    }
    secondary = PickSecondaryLocked(primary_node);
  }
  const storage::BlockId id = storage::BlockStore::Allocate();
  SDW_RETURN_IF_ERROR(stores_[primary_node]->Put(id, data));
  // Replicate the *stored* form so at-rest transforms apply once.
  Status copied = Status::OK();
  if (secondary >= 0) {
    auto stored = stores_[primary_node]->GetStored(id);
    copied = stored.ok()
                 ? stores_[secondary]->PutRaw(id, *std::move(stored))
                 : stored.status();
  }
  // Log the degradation before taking mu_: the log sink does its own
  // locking and formatting, neither belongs under the placement lock.
  if (!copied.ok()) {
    SDW_LOG(Warning) << "secondary copy of block " << id << " on node "
                     << secondary << " failed (" << copied.ToString()
                     << "); degrading to single-copy";
  }
  common::MutexLock lock(mu_);
  if (secondary >= 0 && copied.ok()) {
    RecordPlacementLocked(id, primary_node, secondary);
  } else {
    // Secondary copy didn't land: record a single-copy placement rather
    // than leaking an orphaned primary copy; ReReplicate() heals it.
    RecordPlacementLocked(id, primary_node, -1);
  }
  return id;
}

Status ReplicationManager::Replicate(int primary_node, storage::BlockId id,
                                     const Bytes& stored) {
  if (primary_node < 0 || primary_node >= num_nodes()) {
    return Status::InvalidArgument("bad primary node");
  }
  int secondary;
  {
    common::MutexLock lock(mu_);
    secondary = PickSecondaryLocked(primary_node);
  }
  Status copied = Status::OK();
  if (secondary >= 0) {
    copied = stores_[secondary]->PutRaw(id, stored);
  }
  // As in Write(): log outside mu_, record under it.
  if (!copied.ok()) {
    SDW_LOG(Warning) << "secondary copy of block " << id << " on node "
                     << secondary << " failed (" << copied.ToString()
                     << "); degrading to single-copy";
  }
  common::MutexLock lock(mu_);
  if (secondary >= 0 && copied.ok()) {
    RecordPlacementLocked(id, primary_node, secondary);
    return Status::OK();
  }
  RecordPlacementLocked(id, primary_node, -1);
  return Status::OK();
}

Result<Bytes> ReplicationManager::Read(storage::BlockId id) {
  Placement p;
  {
    common::MutexLock lock(mu_);
    auto it = placements_.find(id);
    if (it == placements_.end()) {
      return Status::NotFound("unknown block " + std::to_string(id));
    }
    p = it->second;
  }
  const bool primary_live = p.primary >= 0 && !IsNodeFailed(p.primary);
  if (primary_live) {
    auto primary_read = stores_[p.primary]->Get(id);
    if (primary_read.ok()) return primary_read;
  }
  if (p.secondary >= 0 && !IsNodeFailed(p.secondary)) {
    auto secondary_read = stores_[p.secondary]->Get(id);
    if (secondary_read.ok()) {
      masked_reads_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter* masked =
          obs::Registry::Global().counter("sdw_repl_masked_reads");
      masked->Add();
      return secondary_read;
    }
  }
  return Status::Unavailable("all replicas of block " + std::to_string(id) +
                             " are lost");
}

Result<Bytes> ReplicationManager::ReadReplicaExcluding(storage::BlockId id,
                                                       int exclude_node) {
  Placement p;
  {
    common::MutexLock lock(mu_);
    auto it = placements_.find(id);
    if (it == placements_.end()) {
      return Status::NotFound("block " + std::to_string(id) +
                              " is not replication-tracked");
    }
    p = it->second;
  }
  for (int node : {p.primary, p.secondary}) {
    if (node < 0 || node == exclude_node || IsNodeFailed(node)) continue;
    auto replica = stores_[node]->GetStored(id);
    if (replica.ok()) {
      masked_reads_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter* masked =
          obs::Registry::Global().counter("sdw_repl_masked_reads");
      masked->Add();
      return replica;
    }
  }
  return Status::Unavailable("no healthy replica of block " +
                             std::to_string(id) + " outside node " +
                             std::to_string(exclude_node));
}

bool ReplicationManager::HasPlacement(storage::BlockId id) const {
  common::MutexLock lock(mu_);
  return placements_.count(id) > 0;
}

void ReplicationManager::MarkNodeFailed(int node) {
  common::MutexLock lock(mu_);
  failed_nodes_.insert(node);
}

void ReplicationManager::FailNode(int node) {
  MarkNodeFailed(node);
  for (storage::BlockId id : stores_[node]->ListIds()) {
    stores_[node]->DropForTest(id);
  }
}

void ReplicationManager::RestoreNode(int node) {
  common::MutexLock lock(mu_);
  failed_nodes_.erase(node);
}

bool ReplicationManager::IsNodeFailed(int node) const {
  common::MutexLock lock(mu_);
  return failed_nodes_.count(node) > 0;
}

std::vector<int> ReplicationManager::FailedNodes() const {
  common::MutexLock lock(mu_);
  return std::vector<int>(failed_nodes_.begin(), failed_nodes_.end());
}

Result<int> ReplicationManager::ReReplicate() {
  // Snapshot under the lock, copy blocks outside it: re-replication
  // streams data between stores and must not block writers/readers.
  std::vector<std::pair<storage::BlockId, Placement>> snapshot;
  std::set<int> failed;
  {
    common::MutexLock lock(mu_);
    snapshot.assign(placements_.begin(), placements_.end());
    failed = failed_nodes_;
  }
  int restored = 0;
  for (auto& [id, placement] : snapshot) {
    const bool primary_ok =
        placement.primary >= 0 && !failed.count(placement.primary) &&
        stores_[placement.primary]->Contains(id);
    const bool secondary_ok =
        placement.secondary >= 0 &&
        !failed.count(placement.secondary) &&
        stores_[placement.secondary]->Contains(id);
    if (primary_ok && secondary_ok) continue;
    if (!primary_ok && !secondary_ok) continue;  // lost; backup's job now
    const int survivor = primary_ok ? placement.primary : placement.secondary;
    // New home: a healthy cohort peer of the survivor.
    int target = -1;
    for (int peer : CohortPeers(survivor)) {
      if (!failed.count(peer) && !stores_[peer]->Contains(id)) {
        target = peer;
        break;
      }
    }
    if (target < 0) {
      // Cohort exhausted: place anywhere healthy.
      for (int n = 0; n < num_nodes(); ++n) {
        if (n != survivor && !failed.count(n) && !stores_[n]->Contains(id)) {
          target = n;
          break;
        }
      }
    }
    if (target < 0) continue;
    // One block failing to copy (transient device fault on either end)
    // must not abort the whole healing pass: skip it — it stays
    // degraded and the next sweep retries — and keep restoring the
    // rest. Aborting here used to leave every later block single-copy
    // AND propagate the error into the health sweep, which then skipped
    // node replacement and GC too.
    Result<Bytes> data = stores_[survivor]->GetStored(id);
    Status copied =
        data.ok() ? stores_[target]->PutRaw(id, *std::move(data))
                  : data.status();
    if (!copied.ok()) {
      SDW_LOG(Warning) << "re-replication of block " << id << " from node "
                       << survivor << " to node " << target
                       << " failed (will retry next sweep): "
                       << copied.ToString();
      static obs::Counter* skipped =
          obs::Registry::Global().counter("sdw_repl_rereplicate_skipped");
      skipped->Add();
      continue;
    }
    {
      common::MutexLock lock(mu_);
      auto it = placements_.find(id);
      if (it != placements_.end()) {
        if (primary_ok) {
          it->second.secondary = target;
        } else {
          it->second.primary = target;
        }
      }
    }
    ++restored;
  }
  return restored;
}

void ReplicationManager::Remove(storage::BlockId id) {
  Placement p;
  {
    common::MutexLock lock(mu_);
    auto it = placements_.find(id);
    if (it == placements_.end()) return;
    p = it->second;
    placements_.erase(it);
  }
  for (int node : {p.primary, p.secondary}) {
    if (node < 0 || node >= num_nodes()) continue;
    (void)stores_[node]->Delete(id);  // NotFound is fine (already gone)
  }
}

int ReplicationManager::ReplicaCount(storage::BlockId id) {
  Placement p;
  {
    common::MutexLock lock(mu_);
    auto it = placements_.find(id);
    if (it == placements_.end()) return 0;
    p = it->second;
  }
  int count = 0;
  for (int node : {p.primary, p.secondary}) {
    if (node >= 0 && !IsNodeFailed(node) && stores_[node]->Contains(id)) {
      ++count;
    }
  }
  return count;
}

int ReplicationManager::CountSingleCopyBlocks() {
  int degraded = 0;
  for (storage::BlockId id : AllBlocks()) {
    if (ReplicaCount(id) == 1) ++degraded;
  }
  return degraded;
}

int ReplicationManager::CountLostBlocks() {
  int lost = 0;
  for (storage::BlockId id : AllBlocks()) {
    if (ReplicaCount(id) == 0) ++lost;
  }
  return lost;
}

std::set<int> ReplicationManager::BlastRadius(int failed_node) const {
  common::MutexLock lock(mu_);
  std::set<int> impacted;
  for (const auto& [id, placement] : placements_) {
    if (placement.primary == failed_node && placement.secondary >= 0) {
      impacted.insert(placement.secondary);
    }
    if (placement.secondary == failed_node && placement.primary >= 0) {
      impacted.insert(placement.primary);
    }
  }
  return impacted;
}

std::vector<storage::BlockId> ReplicationManager::AllBlocks() const {
  common::MutexLock lock(mu_);
  std::vector<storage::BlockId> ids;
  ids.reserve(placements_.size());
  for (const auto& [id, _] : placements_) ids.push_back(id);
  return ids;
}

Result<ReplicationManager::Placement> ReplicationManager::GetPlacement(
    storage::BlockId id) const {
  common::MutexLock lock(mu_);
  auto it = placements_.find(id);
  if (it == placements_.end()) return Status::NotFound("unknown block");
  return it->second;
}

}  // namespace sdw::replication
