#include "warehouse/system_tables.h"

#include <cstdio>
#include <set>

#include "catalog/catalog.h"
#include "exec/operators.h"
#include "obs/registry.h"
#include "plan/planner.h"

namespace sdw::warehouse {

namespace {

ColumnDef IntCol(const std::string& name) {
  return {name, TypeId::kInt64, ColumnEncoding::kRaw, false};
}
ColumnDef StrCol(const std::string& name) {
  return {name, TypeId::kString, ColumnEncoding::kRaw, false};
}
ColumnDef DblCol(const std::string& name) {
  return {name, TypeId::kDouble, ColumnEncoding::kRaw, false};
}

Result<TableSchema> SchemaFor(const std::string& name) {
  if (name == "stl_query") {
    // queue_seconds/exec_seconds are measured real time (the WLM split
    // of the old `elapsed` tick delta, which stays derivable from the
    // tick columns) — deterministic comparisons must project them out.
    return TableSchema(name, {IntCol("query_id"), StrCol("sql_text"),
                              StrCol("status"), IntCol("start_tick"),
                              IntCol("end_tick"), DblCol("queue_seconds"),
                              DblCol("exec_seconds"), IntCol("result_rows"),
                              IntCol("blocks_decoded"),
                              IntCol("network_bytes"), IntCol("masked_reads"),
                              IntCol("s3_fault_reads"), StrCol("snapshot")});
  }
  if (name == "stl_span") {
    return TableSchema(name, {IntCol("query_id"), IntCol("span_id"),
                              IntCol("parent_id"), StrCol("name"),
                              IntCol("slice"), IntCol("stage"),
                              IntCol("start_tick"), IntCol("end_tick"),
                              IntCol("rows_out"), IntCol("blocks_decoded"),
                              IntCol("bytes_shuffled"), IntCol("masked_reads"),
                              IntCol("s3_fault_reads")});
  }
  if (name == "stv_blocklist") {
    return TableSchema(name, {StrCol("tbl"), IntCol("node"), IntCol("slice"),
                              StrCol("col"), IntCol("blk"), IntCol("rows"),
                              IntCol("bytes"), StrCol("encoding"),
                              IntCol("version")});
  }
  if (name == "stv_metrics") {
    return TableSchema(name,
                       {StrCol("name"), StrCol("kind"), DblCol("value")});
  }
  if (name == "stl_health_events") {
    return TableSchema(name, {IntCol("event_id"), IntCol("tick"),
                              StrCol("source"), StrCol("kind"), IntCol("node"),
                              DblCol("value"), StrCol("detail")});
  }
  if (name == "stl_wlm") {
    return TableSchema(name, {IntCol("seq"), IntCol("session_id"),
                              StrCol("state"), StrCol("queue"),
                              StrCol("statement"),
                              DblCol("queued_seconds"),
                              DblCol("exec_seconds"), IntCol("hops")});
  }
  if (name == "stv_cache") {
    return TableSchema(name, {StrCol("cache"), StrCol("fingerprint"),
                              StrCol("tables"), IntCol("hits"),
                              IntCol("entry_rows"), IntCol("live")});
  }
  if (name == "stl_scan") {
    return TableSchema(name, {IntCol("scan_id"), IntCol("query_id"),
                              StrCol("tbl"), StrCol("site"),
                              StrCol("predicates"), IntCol("rows_scanned"),
                              IntCol("rows_out"), IntCol("blocks_read"),
                              IntCol("blocks_skipped"),
                              IntCol("bytes_decoded")});
  }
  if (name == "stv_inflight") {
    return TableSchema(name, {IntCol("inflight_id"), IntCol("session_id"),
                              StrCol("statement"), StrCol("phase"),
                              IntCol("rows_scanned"), IntCol("slices_done"),
                              IntCol("slices_total"),
                              DblCol("queued_seconds"),
                              DblCol("exec_seconds")});
  }
  if (name == "stv_gauge_history") {
    return TableSchema(name, {IntCol("seq"), IntCol("tick"), StrCol("queue"),
                              IntCol("wlm_queued"), IntCol("wlm_running"),
                              IntCol("wlm_max_in_flight"),
                              DblCol("result_cache_hit_rate"),
                              DblCol("segment_cache_hit_rate"),
                              IntCol("gc_backlog"),
                              IntCol("degraded_blocks")});
  }
  if (name == "stl_alert_event_log") {
    return TableSchema(name, {IntCol("alert_id"), IntCol("query_id"),
                              IntCol("tick"), StrCol("rule"), StrCol("tbl"),
                              DblCol("evidence"), StrCol("detail"),
                              StrCol("action")});
  }
  return Status::NotFound("unknown system table '" + name + "'");
}

void AppendTicks(ColumnVector* col, uint64_t v) {
  col->AppendInt(static_cast<int64_t>(v));
}

exec::Batch BuildStlQuery(const obs::QueryLog& log,
                          const TableSchema& schema) {
  exec::Batch b;
  for (const ColumnDef& c : schema.columns()) b.columns.emplace_back(c.type);
  for (const obs::QueryRecord& q : log.Snapshot()) {
    b.columns[0].AppendInt(q.query_id);
    b.columns[1].AppendString(q.sql_text);
    b.columns[2].AppendString(q.status);
    AppendTicks(&b.columns[3], q.start_tick);
    AppendTicks(&b.columns[4], q.end_tick);
    b.columns[5].AppendDouble(q.queue_seconds);
    b.columns[6].AppendDouble(q.exec_seconds);
    AppendTicks(&b.columns[7], q.result_rows);
    AppendTicks(&b.columns[8], q.counters.blocks_decoded);
    AppendTicks(&b.columns[9], q.counters.bytes_shuffled);
    AppendTicks(&b.columns[10], q.counters.masked_reads);
    AppendTicks(&b.columns[11], q.counters.s3_fault_reads);
    b.columns[12].AppendString(q.snapshot);
  }
  return b;
}

exec::Batch BuildStlSpan(const obs::QueryLog& log, const TableSchema& schema) {
  exec::Batch b;
  for (const ColumnDef& c : schema.columns()) b.columns.emplace_back(c.type);
  for (const obs::QueryRecord& q : log.Snapshot()) {
    if (!q.trace) continue;
    for (const obs::Span& s : q.trace->spans()) {
      b.columns[0].AppendInt(q.query_id);
      b.columns[1].AppendInt(s.span_id);
      b.columns[2].AppendInt(s.parent_id);
      b.columns[3].AppendString(s.name);
      b.columns[4].AppendInt(s.slice);
      b.columns[5].AppendInt(s.stage);
      AppendTicks(&b.columns[6], s.start_tick);
      AppendTicks(&b.columns[7], s.end_tick);
      AppendTicks(&b.columns[8], s.counters.rows_out);
      AppendTicks(&b.columns[9], s.counters.blocks_decoded);
      AppendTicks(&b.columns[10], s.counters.bytes_shuffled);
      AppendTicks(&b.columns[11], s.counters.masked_reads);
      AppendTicks(&b.columns[12], s.counters.s3_fault_reads);
    }
  }
  return b;
}

exec::Batch BuildStvBlocklist(cluster::Cluster* cluster,
                              const TableSchema& schema) {
  exec::Batch b;
  for (const ColumnDef& c : schema.columns()) b.columns.emplace_back(c.type);
  // TableNames() is map-ordered and slices are walked in order, so the
  // listing is deterministic. `blk` is the block's position in its
  // column chain, not the global BlockId — chain positions compare
  // equal across two warehouses loaded with the same workload, global
  // ids do not.
  for (const std::string& table : cluster->catalog()->TableNames()) {
    auto schema_or = cluster->catalog()->GetTable(table);
    if (!schema_or.ok()) continue;
    const TableSchema& tschema = *schema_or;
    for (int s = 0; s < cluster->total_slices(); ++s) {
      auto shard = cluster->shard_ref(s, table);
      if (!shard.ok()) continue;
      const int node = cluster->NodeOfSlice(s)->node_id();
      // One consistent version per shard: the listing shows the chains
      // of the head published at this instant, tagged with its MVCC
      // version (what a SELECT admitted now would pin).
      storage::ShardSnapshot head = (*shard)->Snapshot();
      for (size_t c = 0; c < head->chains.size(); ++c) {
        const std::vector<storage::BlockMeta>& chain = head->chains[c];
        for (size_t p = 0; p < chain.size(); ++p) {
          b.columns[0].AppendString(table);
          b.columns[1].AppendInt(node);
          b.columns[2].AppendInt(s);
          b.columns[3].AppendString(tschema.column(c).name);
          b.columns[4].AppendInt(static_cast<int64_t>(p));
          b.columns[5].AppendInt(static_cast<int64_t>(chain[p].row_count));
          b.columns[6].AppendInt(static_cast<int64_t>(chain[p].encoded_bytes));
          b.columns[7].AppendString(ColumnEncodingName(chain[p].encoding));
          b.columns[8].AppendInt(static_cast<int64_t>(head->version));
        }
      }
    }
  }
  return b;
}

exec::Batch BuildStvMetrics(const TableSchema& schema) {
  exec::Batch b;
  for (const ColumnDef& c : schema.columns()) b.columns.emplace_back(c.type);
  for (const obs::MetricRow& m : obs::Registry::Global().Snapshot()) {
    b.columns[0].AppendString(m.name);
    b.columns[1].AppendString(m.kind);
    b.columns[2].AppendDouble(m.value);
  }
  return b;
}

exec::Batch BuildStlHealthEvents(const obs::EventLog& log,
                                 const TableSchema& schema) {
  exec::Batch b;
  for (const ColumnDef& c : schema.columns()) b.columns.emplace_back(c.type);
  for (const obs::HealthEvent& e : log.Snapshot()) {
    b.columns[0].AppendInt(e.event_id);
    AppendTicks(&b.columns[1], e.tick);
    b.columns[2].AppendString(e.source);
    b.columns[3].AppendString(e.kind);
    b.columns[4].AppendInt(e.node);
    b.columns[5].AppendDouble(e.value);
    b.columns[6].AppendString(e.detail);
  }
  return b;
}

exec::Batch BuildStlWlm(const cluster::AdmissionController& wlm,
                        const TableSchema& schema) {
  exec::Batch b;
  for (const ColumnDef& c : schema.columns()) b.columns.emplace_back(c.type);
  for (const cluster::AdmissionController::Report& r : wlm.reports()) {
    b.columns[0].AppendInt(static_cast<int64_t>(r.seq));
    b.columns[1].AppendInt(r.session_id);
    b.columns[2].AppendString(r.state);
    b.columns[3].AppendString(r.queue);
    b.columns[4].AppendString(r.statement);
    b.columns[5].AppendDouble(r.queued_seconds);
    b.columns[6].AppendDouble(r.exec_seconds);
    b.columns[7].AppendInt(r.hops);
  }
  return b;
}

std::string HexFingerprint(uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  return std::string(buf);
}

template <typename V>
void AppendCacheRows(const std::string& cache_name, LruQueryCache<V>* cache,
                     const std::map<std::string, uint64_t>& current_versions,
                     size_t (*entry_rows)(const V&), exec::Batch* b) {
  if (cache == nullptr) return;
  for (const auto& entry : cache->Entries()) {
    std::string tables;
    bool live = true;
    for (const auto& [table, version] : entry.versions) {
      if (!tables.empty()) tables += ",";
      tables += table + "@" + std::to_string(version);
      auto it = current_versions.find(table);
      const uint64_t current = it == current_versions.end() ? 0 : it->second;
      if (current != version) live = false;
    }
    b->columns[0].AppendString(cache_name);
    b->columns[1].AppendString(HexFingerprint(entry.fingerprint));
    b->columns[2].AppendString(tables);
    b->columns[3].AppendInt(static_cast<int64_t>(entry.hits));
    b->columns[4].AppendInt(
        static_cast<int64_t>(entry.value ? entry_rows(*entry.value) : 0));
    b->columns[5].AppendInt(live ? 1 : 0);
  }
}

exec::Batch BuildStvCache(const SystemTableSources& sources,
                          const TableSchema& schema) {
  exec::Batch b;
  for (const ColumnDef& c : schema.columns()) b.columns.emplace_back(c.type);
  AppendCacheRows<plan::PhysicalQuery>(
      "segment", sources.segment_cache, sources.table_versions,
      +[](const plan::PhysicalQuery&) -> size_t { return 0; }, &b);
  AppendCacheRows<CachedResult>(
      "result", sources.result_cache, sources.table_versions,
      +[](const CachedResult& r) -> size_t { return r.rows.num_rows(); }, &b);
  return b;
}

exec::Batch BuildStlScan(const obs::ScanLog* log, const TableSchema& schema) {
  exec::Batch b;
  for (const ColumnDef& c : schema.columns()) b.columns.emplace_back(c.type);
  if (log == nullptr) return b;
  for (const obs::ScanRecord& s : log->Snapshot()) {
    b.columns[0].AppendInt(s.scan_id);
    b.columns[1].AppendInt(s.query_id);
    b.columns[2].AppendString(s.table);
    b.columns[3].AppendString(s.site);
    b.columns[4].AppendString(s.predicates);
    b.columns[5].AppendInt(static_cast<int64_t>(s.rows_scanned));
    b.columns[6].AppendInt(static_cast<int64_t>(s.rows_out));
    b.columns[7].AppendInt(static_cast<int64_t>(s.blocks_read));
    b.columns[8].AppendInt(static_cast<int64_t>(s.blocks_skipped));
    b.columns[9].AppendInt(static_cast<int64_t>(s.bytes_decoded));
  }
  return b;
}

exec::Batch BuildStvInflight(const obs::InflightRegistry* inflight,
                             const TableSchema& schema) {
  exec::Batch b;
  for (const ColumnDef& c : schema.columns()) b.columns.emplace_back(c.type);
  if (inflight == nullptr) return b;
  for (const obs::InflightEntry& e : inflight->Snapshot()) {
    b.columns[0].AppendInt(e.inflight_id);
    b.columns[1].AppendInt(e.session_id);
    b.columns[2].AppendString(e.statement);
    b.columns[3].AppendString(e.phase);
    b.columns[4].AppendInt(static_cast<int64_t>(e.rows_scanned));
    b.columns[5].AppendInt(e.slices_done);
    b.columns[6].AppendInt(e.slices_total);
    b.columns[7].AppendDouble(e.queued_seconds);
    b.columns[8].AppendDouble(e.exec_seconds);
  }
  return b;
}

exec::Batch BuildStvGaugeHistory(const obs::GaugeHistory* gauges,
                                 const TableSchema& schema) {
  exec::Batch b;
  for (const ColumnDef& c : schema.columns()) b.columns.emplace_back(c.type);
  if (gauges == nullptr) return b;
  // Each sample renders as an aggregate "total" row followed by one row
  // per WLM queue. The warehouse-global gauges (cache hit rates, GC
  // backlog, degradation) repeat on every row of the sample so a
  // per-queue filter still sees them; filter queue = 'total' to chart
  // fleet-wide occupancy without double counting.
  for (const obs::GaugeSample& s : gauges->Snapshot()) {
    auto append_row = [&b, &s](const std::string& queue, int queued,
                               int running, int max_in_flight) {
      b.columns[0].AppendInt(s.seq);
      AppendTicks(&b.columns[1], s.tick);
      b.columns[2].AppendString(queue);
      b.columns[3].AppendInt(queued);
      b.columns[4].AppendInt(running);
      b.columns[5].AppendInt(max_in_flight);
      b.columns[6].AppendDouble(s.result_cache_hit_rate);
      b.columns[7].AppendDouble(s.segment_cache_hit_rate);
      b.columns[8].AppendInt(static_cast<int64_t>(s.gc_backlog));
      b.columns[9].AppendInt(static_cast<int64_t>(s.degraded_blocks));
    };
    append_row("total", s.wlm_queued, s.wlm_running, s.wlm_max_in_flight);
    for (const obs::GaugeSample::QueueGauge& q : s.queues) {
      append_row(q.name, q.queued, q.running, q.max_in_flight);
    }
  }
  return b;
}

exec::Batch BuildStlAlertEventLog(const obs::AlertLog* alerts,
                                  const TableSchema& schema) {
  exec::Batch b;
  for (const ColumnDef& c : schema.columns()) b.columns.emplace_back(c.type);
  if (alerts == nullptr) return b;
  for (const obs::AlertEvent& a : alerts->Snapshot()) {
    b.columns[0].AppendInt(a.alert_id);
    b.columns[1].AppendInt(a.query_id);
    AppendTicks(&b.columns[2], a.tick);
    b.columns[3].AppendString(a.rule);
    b.columns[4].AppendString(a.table);
    b.columns[5].AppendDouble(a.evidence);
    b.columns[6].AppendString(a.detail);
    b.columns[7].AppendString(a.action);
  }
  return b;
}

}  // namespace

bool IsSystemTable(const std::string& name) {
  static const std::set<std::string>* tables = new std::set<std::string>{
      "stl_query", "stl_span", "stv_blocklist", "stv_metrics",
      "stl_health_events", "stl_wlm", "stv_cache", "stl_scan",
      "stv_inflight", "stv_gauge_history", "stl_alert_event_log"};
  return tables->count(name) > 0;
}

Result<SystemQueryResult> ExecuteSystemQuery(const plan::LogicalQuery& query,
                                             const SystemTableSources& sources) {
  if (query.join_table.has_value()) {
    return Status::NotSupported("joins are not supported on system tables");
  }
  SDW_ASSIGN_OR_RETURN(TableSchema schema, SchemaFor(query.from_table));

  exec::Batch data;
  if (query.from_table == "stl_query") {
    data = BuildStlQuery(*sources.query_log, schema);
  } else if (query.from_table == "stl_span") {
    data = BuildStlSpan(*sources.query_log, schema);
  } else if (query.from_table == "stv_blocklist") {
    data = BuildStvBlocklist(sources.cluster, schema);
  } else if (query.from_table == "stv_metrics") {
    data = BuildStvMetrics(schema);
  } else if (query.from_table == "stl_wlm") {
    data = BuildStlWlm(*sources.wlm, schema);
  } else if (query.from_table == "stv_cache") {
    data = BuildStvCache(sources, schema);
  } else if (query.from_table == "stl_scan") {
    data = BuildStlScan(sources.scan_log, schema);
  } else if (query.from_table == "stv_inflight") {
    data = BuildStvInflight(sources.inflight, schema);
  } else if (query.from_table == "stv_gauge_history") {
    data = BuildStvGaugeHistory(sources.gauges, schema);
  } else if (query.from_table == "stl_alert_event_log") {
    data = BuildStlAlertEventLog(sources.alerts, schema);
  } else {
    data = BuildStlHealthEvents(*sources.event_log, schema);
  }

  // Plan against a one-table synthetic catalog, then run the pipeline
  // on the leader: system tables live on the leader node, so there is
  // nothing to distribute. Zone predicates are skipped (the residual
  // filter is exact); everything else is the ordinary operator stack.
  Catalog catalog;
  SDW_RETURN_IF_ERROR(catalog.CreateTable(schema));
  TableStats tstats;
  tstats.row_count = data.num_rows();
  tstats.columns.resize(schema.num_columns());
  catalog.UpdateStats(schema.name(), tstats);
  plan::Planner planner(&catalog);
  SDW_ASSIGN_OR_RETURN(plan::PhysicalQuery phys, planner.Plan(query));

  std::vector<TypeId> types;
  types.reserve(phys.scan.columns.size());
  for (int c : phys.scan.columns) types.push_back(schema.column(c).type);
  exec::Batch projected = exec::MakeBatch(types);
  for (size_t i = 0; i < phys.scan.columns.size(); ++i) {
    const ColumnVector& src = data.columns[phys.scan.columns[i]];
    SDW_RETURN_IF_ERROR(projected.columns[i].AppendRange(src, 0, src.size()));
  }
  std::vector<exec::Batch> batches;
  batches.push_back(std::move(projected));
  exec::OperatorPtr op = exec::MemoryScan(types, std::move(batches));
  if (phys.scan.filter) {
    op = exec::Filter(std::move(op), phys.scan.filter);
  }
  if (phys.agg.has_value()) {
    op = exec::HashAggregate(std::move(op), phys.agg->group_by,
                             phys.agg->aggs, exec::AggMode::kSingle);
  }
  if (!phys.project.empty()) {
    op = exec::Project(std::move(op), phys.project);
  }
  if (!phys.order_by.empty()) {
    op = exec::Sort(std::move(op), phys.order_by);
  }
  if (phys.limit.has_value()) {
    op = exec::Limit(std::move(op), *phys.limit);
  }
  SystemQueryResult out;
  SDW_ASSIGN_OR_RETURN(out.rows, exec::Collect(op.get()));
  out.column_names = phys.output_names;
  return out;
}

std::string RenderExplainAnalyze(const plan::PhysicalQuery& query,
                                 const cluster::QueryResult& result,
                                 const std::vector<obs::AlertEvent>& alerts) {
  const obs::Trace* trace = result.trace.get();
  const cluster::ExecStats& stats = result.stats;
  auto fmt = [](uint64_t v) { return std::to_string(v); };
  // Zone-map accounting per plan site, from the scan profiles the
  // executor recorded (absent in interpreted mode).
  auto scan_line = [&](const char* site, const std::string& table) {
    for (const cluster::ScanProfile& p : stats.scans) {
      if (p.site != site || p.table != table) continue;
      return "\n     (blocks_read=" + fmt(p.blocks_read) +
             " blocks_skipped=" + fmt(p.blocks_skipped) +
             " rows_scanned=" + fmt(p.rows_scanned) +
             " rows_out=" + fmt(p.rows_out) + ")";
    }
    return std::string();
  };

  std::string out = "XN Scan " + query.scan.table + " (cols";
  for (int c : query.scan.columns) out += " " + std::to_string(c);
  out += ")";
  if (!query.scan.predicates.empty()) {
    out += " [" + std::to_string(query.scan.predicates.size()) +
           " zone preds]";
  }
  if (query.scan.filter) out += " filter " + query.scan.filter->ToString();
  out += "\n     (blocks_decoded=" + fmt(stats.blocks_decoded) +
         " masked_reads=" + fmt(stats.masked_reads) +
         " s3_fault_reads=" + fmt(stats.s3_fault_reads) + ")";
  out += scan_line("probe", query.scan.table);

  if (query.join.has_value()) {
    out += "\n  -> " +
           std::string(plan::JoinStrategyName(query.join->strategy)) +
           " Hash Join with " + query.join->build.table;
    if (query.join->build.filter) {
      out += " (build filter " + query.join->build.filter->ToString() + ")";
    }
    out += scan_line("build", query.join->build.table);
    if (trace) {
      if (query.join->strategy == plan::JoinStrategy::kBroadcastBuild) {
        const obs::SpanCounters scans = trace->SumByName("broadcast scan");
        const obs::SpanCounters bytes = trace->SumByName("broadcast");
        out += "\n     (build rows=" + fmt(scans.rows_out) +
               " broadcast_bytes=" + fmt(bytes.bytes_shuffled) + ")";
      } else if (query.join->strategy == plan::JoinStrategy::kShuffle) {
        // Probe and build shuffles both record "shuffle scan" children;
        // tell them apart through their parent spans.
        obs::SpanCounters probe, build;
        for (const obs::Span& parent : trace->spans()) {
          if (parent.name != "shuffle probe" && parent.name != "shuffle build")
            continue;
          for (const obs::Span& child : trace->spans()) {
            if (child.parent_id != parent.span_id) continue;
            (parent.name == "shuffle probe" ? probe : build) += child.counters;
          }
        }
        out += "\n     (probe rows=" + fmt(probe.rows_out) +
               " bytes=" + fmt(probe.bytes_shuffled) +
               "; build rows=" + fmt(build.rows_out) +
               " bytes=" + fmt(build.bytes_shuffled) + ")";
      }
    }
  }

  if (query.agg.has_value()) {
    out += "\n  -> Partial HashAggregate (" +
           std::to_string(query.agg->group_by.size()) + " keys, " +
           std::to_string(query.agg->aggs.size()) + " aggs) per slice";
  }
  if (trace) {
    const obs::SpanCounters pipe = trace->SumByName("slice pipeline");
    out += "\n  -> Slice pipelines (rows_to_leader=" + fmt(pipe.rows_out) +
           " bytes_to_leader=" + fmt(pipe.bytes_shuffled) + ")";
  }
  if (query.agg.has_value()) {
    out += "\n  -> Final HashAggregate at leader";
  }
  if (!query.project.empty()) {
    out += "\n  -> Project";
    for (const auto& e : query.project) out += " " + e->ToString();
  }
  if (!query.order_by.empty()) {
    out += "\n  -> Sort at leader";
  }
  if (query.limit.has_value()) {
    out += "\n  -> Limit " + std::to_string(*query.limit);
  }
  out += "\n  -> Result (rows=" + fmt(stats.result_rows) +
         " network_bytes=" + fmt(stats.network_bytes);
  if (trace && trace->root() != nullptr) {
    out += " elapsed_ticks=" +
           fmt(trace->root()->end_tick - trace->root()->start_tick);
  }
  out += ")";
  for (const obs::AlertEvent& a : alerts) {
    out += "\nAlert: " + a.rule;
    if (!a.table.empty()) out += " on " + a.table;
    out += " — " + a.detail + " (suggested: " + a.action + ")";
  }
  return out;
}

}  // namespace sdw::warehouse
