#ifndef SDW_WAREHOUSE_WAREHOUSE_H_
#define SDW_WAREHOUSE_WAREHOUSE_H_

#include <memory>
#include <string>
#include <vector>

#include "backup/backup_manager.h"
#include "backup/s3sim.h"
#include "cluster/cluster.h"
#include "cluster/executor.h"
#include "common/result.h"
#include "controlplane/control_plane.h"
#include "load/copy.h"
#include "obs/query_log.h"
#include "plan/planner.h"
#include "security/keychain.h"
#include "sim/engine.h"
#include "sql/parser.h"

namespace sdw::warehouse {

/// Outcome of one SQL statement.
struct StatementResult {
  /// Result rows for SELECT; empty otherwise.
  exec::Batch rows;
  std::vector<std::string> column_names;
  cluster::ExecStats exec_stats;
  /// EXPLAIN output or a human-readable confirmation.
  std::string message;
  /// COPY telemetry when the statement was a COPY.
  load::CopyStats copy_stats;

  /// Renders the rows as an aligned text table (examples/demos).
  std::string ToTable(size_t max_rows = 20) const;
};

struct WarehouseOptions {
  cluster::ClusterConfig cluster;
  plan::PlannerOptions planner;
  cluster::ExecOptions exec;
  std::string region = "us-east-1";
  std::string cluster_id = "simpledw";
  /// The §3.2 encryption checkbox: every block is ChaCha20-encrypted at
  /// rest under a per-block key wrapped by the cluster key wrapped by
  /// the master key. Backups upload the ciphertext.
  bool encrypted = false;
  /// Masked read failures on a node before the health sweep treats it
  /// as a crashing process (host-manager restart, then escalation).
  int health_read_failure_threshold = 3;
  /// Per-node host-manager policy (restart budget before escalating).
  controlplane::HostManager::Config host_manager;
};

/// Outcome of one health sweep (§2.2: host managers restart, the
/// control plane replaces).
struct HealthStats {
  /// Nodes that showed trouble this sweep (dead or over threshold).
  int unhealthy_nodes = 0;
  /// Local process restarts performed by host managers.
  int restarts = 0;
  /// Nodes escalated to a control-plane replacement workflow.
  int escalations = 0;
  /// Blocks copied back to two-copy during this sweep.
  uint64_t blocks_rereplicated = 0;
  /// Blocks still at one copy after the sweep (degraded but serving).
  uint64_t single_copy_blocks = 0;
  /// Blocks with no live replica (only reachable via S3 page faults).
  uint64_t lost_blocks = 0;
  /// Simulated seconds spent in control-plane replacement workflows.
  double control_plane_seconds = 0;
};

/// The customer-facing endpoint: a SQL-speaking, fully-managed
/// warehouse. Wraps the leader-node pieces (parser, planner, executor)
/// plus COPY and backup/restore — the "easy to buy, easy to tune, easy
/// to manage" surface the paper argues for.
class Warehouse {
 public:
  explicit Warehouse(WarehouseOptions options = {});

  /// Executes one SQL statement.
  Result<StatementResult> Execute(const std::string& sql);

  /// Direct-API access for tooling and benches.
  cluster::Cluster* data_plane() { return cluster_.get(); }
  backup::S3* s3() { return &s3_; }
  backup::BackupManager* backups() { return &backups_; }

  /// Takes a snapshot of the warehouse.
  Result<backup::BackupManager::BackupStats> Backup(bool user_initiated = false);

  /// Streaming-restores a snapshot and swaps the endpoint onto the
  /// restored cluster (queries work immediately; blocks page in from
  /// the object store on demand).
  Status RestoreInPlace(uint64_t snapshot_id,
                        backup::BackupManager::RestoreStats* stats = nullptr);

  /// Resizes the data plane: the old cluster copies to a new one and
  /// the endpoint swaps over (§3.1).
  Result<cluster::Cluster::ResizeStats> Resize(int new_num_nodes);

  /// Re-wraps every block key under a fresh cluster key (queries keep
  /// working; no data is touched). Only valid when encrypted.
  Status RotateKeys();

  /// Single-session transactions (§2.1: the leader "coordinates
  /// serialization and state of transactions"). BEGIN captures an
  /// in-memory manifest of every block chain; ROLLBACK swaps the chains
  /// back (blocks are immutable, so pre-transaction blocks are still on
  /// the device). DROP TABLE / VACUUM / resize are rejected inside a
  /// transaction because they reclaim blocks eagerly.
  Status Begin();
  Status Commit();
  Status Rollback();
  bool in_transaction() const { return in_txn_; }

  /// Key hierarchy (null when not encrypted).
  security::KeyHierarchy* keys() { return keys_.get(); }

  /// One pass of the health/recovery loop (§2.2 "escalators, not
  /// elevators"): per node, a dead store or repeated masked read
  /// failures count as a process crash — the host manager restarts it
  /// locally until its budget runs out, then escalates to the control
  /// plane's node-replacement workflow. Every sweep re-replicates
  /// under-replicated blocks and reports remaining degradation; a
  /// single-copy cluster keeps serving with a warning (degrade, don't
  /// fail). Requires a replicated cluster.
  Result<HealthStats> RunHealthSweep();

  /// Control-plane access for tooling and benches.
  controlplane::ControlPlane* control_plane() { return &control_plane_; }
  sim::Engine* health_engine() { return &health_engine_; }

  /// Observability: the per-warehouse query history behind stl_query /
  /// stl_span and the health-event history behind stl_health_events.
  /// Both are also queryable through Execute() as system tables.
  obs::QueryLog* query_log() { return &query_log_; }
  obs::EventLog* event_log() { return &event_log_; }

 private:
  /// Installs the encrypt/decrypt transforms on every node store of the
  /// current cluster (called at creation, after resize and restore).
  void WireEncryption();
  void WireEncryptionOn(cluster::Cluster* target);

  /// (Re)creates one host manager per node of the current cluster
  /// (called at creation and after restore/resize swap the cluster).
  void SyncHostManagers();

  WarehouseOptions options_;
  std::unique_ptr<security::ServiceKeyProvider> master_provider_;
  std::unique_ptr<security::KeyHierarchy> keys_;
  bool in_txn_ = false;
  backup::SnapshotManifest txn_manifest_;
  std::unique_ptr<cluster::Cluster> cluster_;
  backup::S3 s3_;
  backup::BackupManager backups_;
  sim::Engine health_engine_;
  controlplane::ControlPlane control_plane_{&health_engine_};
  std::vector<controlplane::HostManager> host_managers_;
  obs::QueryLog query_log_;
  obs::EventLog event_log_;
};

}  // namespace sdw::warehouse

#endif  // SDW_WAREHOUSE_WAREHOUSE_H_
