#ifndef SDW_WAREHOUSE_WAREHOUSE_H_
#define SDW_WAREHOUSE_WAREHOUSE_H_

#include <memory>
#include <string>
#include <vector>

#include "backup/backup_manager.h"
#include "backup/s3sim.h"
#include "cluster/cluster.h"
#include "cluster/executor.h"
#include "common/result.h"
#include "load/copy.h"
#include "plan/planner.h"
#include "security/keychain.h"
#include "sql/parser.h"

namespace sdw::warehouse {

/// Outcome of one SQL statement.
struct StatementResult {
  /// Result rows for SELECT; empty otherwise.
  exec::Batch rows;
  std::vector<std::string> column_names;
  cluster::ExecStats exec_stats;
  /// EXPLAIN output or a human-readable confirmation.
  std::string message;
  /// COPY telemetry when the statement was a COPY.
  load::CopyStats copy_stats;

  /// Renders the rows as an aligned text table (examples/demos).
  std::string ToTable(size_t max_rows = 20) const;
};

struct WarehouseOptions {
  cluster::ClusterConfig cluster;
  plan::PlannerOptions planner;
  cluster::ExecOptions exec;
  std::string region = "us-east-1";
  std::string cluster_id = "simpledw";
  /// The §3.2 encryption checkbox: every block is ChaCha20-encrypted at
  /// rest under a per-block key wrapped by the cluster key wrapped by
  /// the master key. Backups upload the ciphertext.
  bool encrypted = false;
};

/// The customer-facing endpoint: a SQL-speaking, fully-managed
/// warehouse. Wraps the leader-node pieces (parser, planner, executor)
/// plus COPY and backup/restore — the "easy to buy, easy to tune, easy
/// to manage" surface the paper argues for.
class Warehouse {
 public:
  explicit Warehouse(WarehouseOptions options = {});

  /// Executes one SQL statement.
  Result<StatementResult> Execute(const std::string& sql);

  /// Direct-API access for tooling and benches.
  cluster::Cluster* data_plane() { return cluster_.get(); }
  backup::S3* s3() { return &s3_; }
  backup::BackupManager* backups() { return &backups_; }

  /// Takes a snapshot of the warehouse.
  Result<backup::BackupManager::BackupStats> Backup(bool user_initiated = false);

  /// Streaming-restores a snapshot and swaps the endpoint onto the
  /// restored cluster (queries work immediately; blocks page in from
  /// the object store on demand).
  Status RestoreInPlace(uint64_t snapshot_id,
                        backup::BackupManager::RestoreStats* stats = nullptr);

  /// Resizes the data plane: the old cluster copies to a new one and
  /// the endpoint swaps over (§3.1).
  Result<cluster::Cluster::ResizeStats> Resize(int new_num_nodes);

  /// Re-wraps every block key under a fresh cluster key (queries keep
  /// working; no data is touched). Only valid when encrypted.
  Status RotateKeys();

  /// Single-session transactions (§2.1: the leader "coordinates
  /// serialization and state of transactions"). BEGIN captures an
  /// in-memory manifest of every block chain; ROLLBACK swaps the chains
  /// back (blocks are immutable, so pre-transaction blocks are still on
  /// the device). DROP TABLE / VACUUM / resize are rejected inside a
  /// transaction because they reclaim blocks eagerly.
  Status Begin();
  Status Commit();
  Status Rollback();
  bool in_transaction() const { return in_txn_; }

  /// Key hierarchy (null when not encrypted).
  security::KeyHierarchy* keys() { return keys_.get(); }

 private:
  /// Installs the encrypt/decrypt transforms on every node store of the
  /// current cluster (called at creation, after resize and restore).
  void WireEncryption();
  void WireEncryptionOn(cluster::Cluster* target);

  WarehouseOptions options_;
  std::unique_ptr<security::ServiceKeyProvider> master_provider_;
  std::unique_ptr<security::KeyHierarchy> keys_;
  bool in_txn_ = false;
  backup::SnapshotManifest txn_manifest_;
  std::unique_ptr<cluster::Cluster> cluster_;
  backup::S3 s3_;
  backup::BackupManager backups_;
};

}  // namespace sdw::warehouse

#endif  // SDW_WAREHOUSE_WAREHOUSE_H_
