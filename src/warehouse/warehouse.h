#ifndef SDW_WAREHOUSE_WAREHOUSE_H_
#define SDW_WAREHOUSE_WAREHOUSE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "backup/backup_manager.h"
#include "backup/s3sim.h"
#include "cluster/cluster.h"
#include "cluster/cost_model.h"
#include "cluster/executor.h"
#include "cluster/wlm.h"
#include "common/fault_injector.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "controlplane/control_plane.h"
#include "durability/commit_log.h"
#include "load/copy.h"
#include "obs/alerts.h"
#include "obs/profiler.h"
#include "obs/query_log.h"
#include "plan/planner.h"
#include "security/keychain.h"
#include "sim/engine.h"
#include "sql/parser.h"
#include "warehouse/query_cache.h"

namespace sdw::warehouse {

/// Outcome of one SQL statement.
struct StatementResult {
  /// Result rows for SELECT; empty otherwise.
  exec::Batch rows;
  std::vector<std::string> column_names;
  cluster::ExecStats exec_stats;
  /// EXPLAIN output or a human-readable confirmation.
  std::string message;
  /// COPY telemetry when the statement was a COPY.
  load::CopyStats copy_stats;
  /// The rows were served from the result cache (no slot occupied, no
  /// data touched).
  bool from_result_cache = false;

  /// Renders the rows as an aligned text table (examples/demos).
  std::string ToTable(size_t max_rows = 20) const;
};

struct WarehouseOptions {
  cluster::ClusterConfig cluster;
  plan::PlannerOptions planner;
  cluster::ExecOptions exec;
  std::string region = "us-east-1";
  std::string cluster_id = "simpledw";
  /// The §3.2 encryption checkbox: every block is ChaCha20-encrypted at
  /// rest under a per-block key wrapped by the cluster key wrapped by
  /// the master key. Backups upload the ciphertext.
  bool encrypted = false;
  /// Masked read failures on a node before the health sweep treats it
  /// as a crashing process (host-manager restart, then escalation).
  int health_read_failure_threshold = 3;
  /// Per-node host-manager policy (restart budget before escalating).
  controlplane::HostManager::Config host_manager;
  /// Live admission control for concurrent Execute() calls (§4:
  /// resources "distributed across many concurrent queries").
  cluster::WlmConfig wlm;
  /// Cost model behind the WLM's short-query-acceleration estimate
  /// (stats bytes over scan throughput — DESIGN.md §4k).
  cluster::CostModel cost_model;
  /// Compiled-segment and result caches keyed by plan fingerprint.
  CacheConfig cache;
  /// When set, the warehouse reads and writes this external object
  /// store instead of owning one. This is how crash recovery is
  /// modeled: S3 survives the "process", so a fresh Warehouse over the
  /// same S3 plus Recover() is a restart of the same cluster.
  backup::S3* shared_s3 = nullptr;
  /// Commit-log durability (§2.2: "commits... are logged to S3").
  /// On by default: every acknowledged mutating statement is in the
  /// log (or in a snapshot at or above its LSN) before it is acked.
  durability::DurabilityOptions durability;
  /// RunHealthSweep() triggers an MVCC garbage-collection pass when
  /// the data plane's pending-garbage count (retired chain versions +
  /// dropped shards) reaches this threshold. 0 disables self-GC.
  int health_gc_threshold = 64;
  /// The workload-intelligence layer: stl_scan telemetry, stv_inflight
  /// progress, gauge sampling, and performance alerts. On by default;
  /// the A17 bench's baseline arm turns it off to measure its overhead.
  bool workload_intelligence = true;
  /// Ring size of stv_gauge_history (one sample per health sweep).
  size_t gauge_history_capacity = 256;
};

/// Outcome of one health sweep (§2.2: host managers restart, the
/// control plane replaces).
struct HealthStats {
  /// Nodes that showed trouble this sweep (dead or over threshold).
  int unhealthy_nodes = 0;
  /// Local process restarts performed by host managers.
  int restarts = 0;
  /// Nodes escalated to a control-plane replacement workflow.
  int escalations = 0;
  /// Blocks copied back to two-copy during this sweep.
  uint64_t blocks_rereplicated = 0;
  /// Blocks still at one copy after the sweep (degraded but serving).
  uint64_t single_copy_blocks = 0;
  /// Blocks with no live replica (only reachable via S3 page faults).
  uint64_t lost_blocks = 0;
  /// Simulated seconds spent in control-plane replacement workflows.
  double control_plane_seconds = 0;
  /// The sweep self-triggered an MVCC GC pass (pending garbage crossed
  /// WarehouseOptions::health_gc_threshold).
  bool gc_triggered = false;
  uint64_t gc_versions_reclaimed = 0;
  uint64_t gc_blocks_reclaimed = 0;
};

/// The customer-facing endpoint: a SQL-speaking, fully-managed
/// warehouse. Wraps the leader-node pieces (parser, planner, executor)
/// plus COPY and backup/restore — the "easy to buy, easy to tune, easy
/// to manage" surface the paper argues for.
///
/// The front door is thread-safe: concurrent Execute() calls are
/// admitted into WlmConfig::concurrency_slots live slots (FIFO queue
/// beyond that, per-statement queue timeout). SELECTs run under MVCC:
/// admission pins a (cluster, table versions, shard snapshot) triple
/// under a short shared hold of the snapshot-coherence lock and scans
/// immutable block chains as of that snapshot — never blocking on, or
/// blocked by, a running COPY/VACUUM. Writers are serialized on
/// writer_mu_, build their new chains off to the side, and install
/// them with a version bump under a short exclusive hold of the same
/// coherence lock, so a snapshot is always all-before or all-after a
/// statement and no cache entry computed from pre-write data can ever
/// be served after the write.
class Warehouse {
 public:
  explicit Warehouse(WarehouseOptions options = {});

  /// A lightweight client connection. Statements executed through a
  /// session are tagged with its id in stl_wlm; sessions share the
  /// warehouse front door and each may be driven from its own thread.
  /// The user group feeds the WLM classifier (DESIGN.md §4k).
  class Session {
   public:
    Session() = default;

    int id() const { return id_; }
    const std::string& user_group() const { return user_group_; }
    Result<StatementResult> Execute(const std::string& sql) {
      return warehouse_->ExecuteAs(sql, id_, user_group_);
    }

   private:
    friend class Warehouse;
    Session(Warehouse* warehouse, int id, std::string user_group)
        : warehouse_(warehouse),
          id_(id),
          user_group_(std::move(user_group)) {}
    Warehouse* warehouse_ = nullptr;
    int id_ = 0;
    std::string user_group_;
  };

  /// Opens a new session (thread-safe). The user group routes the
  /// session's statements through the WLM classifier's group rules.
  Session CreateSession(std::string user_group = "");

  /// Executes one SQL statement (as the default session 0).
  Result<StatementResult> Execute(const std::string& sql);

  /// Executes an already-parsed query through the full serving path
  /// (admission + caches) — the API the differential tests drive.
  Result<StatementResult> ExecuteQuery(const plan::LogicalQuery& query);

  /// Direct-API access for tooling and benches.
  cluster::Cluster* data_plane() { return cluster_.get(); }
  backup::S3* s3() { return s3_; }
  backup::BackupManager* backups() { return &backups_; }

  /// The durable commit log (LSN-sequenced records in the object
  /// store) and the crash-point controller the tests arm. Once a crash
  /// fires, every entry point returns kAborted until Recover().
  durability::CommitLog* commit_log() { return &commit_log_; }
  chaos::CrashController* crash_points() { return &crash_; }
  bool crashed() const { return crash_.crashed(); }

  struct RecoverStats {
    /// Snapshot the recovered state was based on (0: none existed —
    /// the whole log replayed onto an empty cluster).
    uint64_t base_snapshot_id = 0;
    /// Commit-log records replayed on top of the base snapshot.
    uint64_t replayed_records = 0;
    /// Statements those records re-executed.
    uint64_t replayed_statements = 0;
    /// First LSN of a torn tail that was truncated (0: tail was clean).
    uint64_t torn_lsn = 0;
    backup::BackupManager::RestoreStats restore;
  };

  /// Crash recovery: resets the crash controller ("new process"),
  /// streaming-restores the commit log's recovery-base snapshot (or
  /// starts empty when none exists) and idempotently replays the log
  /// tail above the snapshot's durable-LSN watermark through the
  /// normal statement path. A torn final record (append died mid-
  /// write) is truncated — it was never acknowledged. Single-caller:
  /// run recovery to completion before serving traffic.
  Result<RecoverStats> Recover();

  /// The live admission controller (slot occupancy, queue, stl_wlm).
  cluster::AdmissionController* wlm() { return &admission_; }
  /// The plan/result caches (metrics and stv_cache back them too).
  SegmentCache* segment_cache() { return &segment_cache_; }
  ResultCache* result_cache() { return &result_cache_; }

  /// Takes a snapshot of the warehouse.
  Result<backup::BackupManager::BackupStats> Backup(bool user_initiated = false);

  /// Streaming-restores a snapshot and swaps the endpoint onto the
  /// restored cluster (queries work immediately; blocks page in from
  /// the object store on demand).
  Status RestoreInPlace(uint64_t snapshot_id,
                        backup::BackupManager::RestoreStats* stats = nullptr);

  /// Resizes the data plane: the old cluster copies to a new one and
  /// the endpoint swaps over (§3.1).
  Result<cluster::Cluster::ResizeStats> Resize(int new_num_nodes);

  /// Re-wraps every block key under a fresh cluster key (queries keep
  /// working; no data is touched). Only valid when encrypted.
  Status RotateKeys();

  /// Single-session transactions (§2.1: the leader "coordinates
  /// serialization and state of transactions"). BEGIN captures an
  /// in-memory manifest of every block chain; ROLLBACK swaps the chains
  /// back (blocks are immutable, so pre-transaction blocks are still on
  /// the device). DROP TABLE / VACUUM / resize are rejected inside a
  /// transaction because they reclaim blocks eagerly.
  Status Begin();
  Status Commit();
  Status Rollback();
  bool in_transaction() const {
    return in_txn_.load(std::memory_order_relaxed);
  }

  /// Key hierarchy (null when not encrypted).
  security::KeyHierarchy* keys() { return keys_.get(); }

  /// One pass of the health/recovery loop (§2.2 "escalators, not
  /// elevators"): per node, a dead store or repeated masked read
  /// failures count as a process crash — the host manager restarts it
  /// locally until its budget runs out, then escalates to the control
  /// plane's node-replacement workflow. Every sweep re-replicates
  /// under-replicated blocks and reports remaining degradation; a
  /// single-copy cluster keeps serving with a warning (degrade, don't
  /// fail). Requires a replicated cluster.
  Result<HealthStats> RunHealthSweep();

  /// Control-plane access for tooling and benches.
  controlplane::ControlPlane* control_plane() { return &control_plane_; }
  sim::Engine* health_engine() { return &health_engine_; }

  /// Observability: the per-warehouse query history behind stl_query /
  /// stl_span and the health-event history behind stl_health_events.
  /// Both are also queryable through Execute() as system tables.
  obs::QueryLog* query_log() { return &query_log_; }
  obs::EventLog* event_log() { return &event_log_; }

  /// Workload intelligence: per-scan telemetry + block heat (stl_scan),
  /// live statement progress (stv_inflight), sweep gauge samples
  /// (stv_gauge_history), and performance alerts
  /// (stl_alert_event_log). All four are queryable through Execute().
  obs::ScanLog* scan_log() { return &scan_log_; }
  obs::InflightRegistry* inflight() { return &inflight_; }
  obs::GaugeHistory* gauges() { return &gauges_; }
  obs::AlertLog* alerts() { return &alerts_; }

  /// One MVCC garbage-collection sweep over the data plane: reclaims
  /// retired chain versions and dropped tables no pinned snapshot can
  /// reach anymore (VACUUM and DROP also collect inline).
  cluster::Cluster::GcStats CollectGarbage();

 private:
  /// Everything one SELECT needs pinned at admission: the data plane it
  /// runs on (restore/resize swap the pointer; pinned readers keep the
  /// old one alive), the cache key, and the shard snapshot the scans
  /// read. All three are captured under one shared hold of data_mu_, so
  /// the triple is coherent: the versions describe exactly the chains
  /// the snapshot pinned.
  struct PinnedSnapshot {
    std::shared_ptr<cluster::Cluster> cluster;
    TableVersions versions;
    std::shared_ptr<const cluster::ReadSnapshot> snapshot;
  };
  [[nodiscard]] Result<PinnedSnapshot> PinSnapshot(
      const std::vector<std::string>& tables)
      SDW_EXCLUDES(data_mu_, cache_mu_);

  /// Installs the encrypt/decrypt transforms on every node store of the
  /// current cluster (called at creation, after resize and restore).
  void WireEncryption();
  void WireEncryptionOn(cluster::Cluster* target);

  /// (Re)creates one host manager per node of the current cluster
  /// (called at creation and after restore/resize swap the cluster).
  void SyncHostManagers();

  /// The session-tagged front door behind Execute()/Session::Execute().
  Result<StatementResult> ExecuteAs(const std::string& sql, int session_id,
                                    const std::string& user_group = "");

  /// A user-table SELECT (or EXPLAIN [ANALYZE]) through admission and
  /// the caches; executes against a pinned MVCC snapshot, off every
  /// warehouse lock.
  Result<StatementResult> RunSelect(const plan::LogicalQuery& query,
                                    bool explain, bool explain_analyze,
                                    const std::string& sql_text,
                                    int session_id,
                                    const std::string& user_group);

  /// Every non-SELECT statement: admission, then writer_mu_ for the
  /// whole statement; heavy work (parse, sort, encode) runs off
  /// data_mu_ on staged chains, and only the version-bump + install
  /// takes data_mu_ exclusively.
  Result<StatementResult> RunStatement(sql::Statement stmt,
                                       const std::string& sql,
                                       int session_id,
                                       const std::string& user_group);

  /// Cost-model scan estimate for the short-query fast lane: stats
  /// bytes of the referenced tables over per-slice scan throughput.
  /// Returns -1 (never SQA-eligible) when SQA is off or no stats exist.
  double EstimateSelectSeconds(const std::vector<std::string>& tables)
      SDW_EXCLUDES(data_mu_);

  /// An injectable crash site; no-op while replaying the log (the
  /// crash already happened — recovery must run to completion).
  Status CrashPoint(const char* site);
  /// The durability point of every auto-commit statement: appends one
  /// kStatement record (or buffers the text when inside a transaction
  /// — COMMIT logs the batch) before the caller installs. Acked =>
  /// logged; crashed before the append => atomically absent.
  Status LogBeforeInstall(const std::string& sql, int session_id);
  /// Install barrier for multi-shard CommitStaged calls: fires the
  /// mid-install crash site after the first shard's head swings.
  std::function<Status(size_t)> MidInstallBarrier();
  /// Re-executes one log record through the normal front door.
  Status ApplyLogRecord(const durability::LogRecord& record,
                        RecoverStats* stats);
  Status RecoverInternal(RecoverStats* stats);

  /// Current version counters of `tables` (unseen tables read as 0).
  TableVersions SnapshotVersions(const std::vector<std::string>& tables)
      SDW_EXCLUDES(cache_mu_);
  /// Bumps the counters of `tables` — called BEFORE the write mutates
  /// anything, so even a write that fails halfway leaves no cache entry
  /// servable against the possibly-changed data.
  void BumpVersions(const std::vector<std::string>& tables)
      SDW_EXCLUDES(cache_mu_);
  /// Bumps every counter the warehouse has ever seen PLUS every table
  /// currently in the catalog (restore/resize/rollback swap the whole
  /// data plane, and a restored snapshot may contain tables this
  /// warehouse never read — those must enter the map too, or their
  /// first post-restore cache entries would be keyed version 0 forever).
  void BumpAllVersions() SDW_EXCLUDES(cache_mu_);

  WarehouseOptions options_;
  std::unique_ptr<security::ServiceKeyProvider> master_provider_;
  std::unique_ptr<security::KeyHierarchy> keys_;
  std::atomic<bool> in_txn_{false};
  backup::SnapshotManifest txn_manifest_;
  /// Statement texts buffered inside the open transaction; COMMIT
  /// appends them as one atomic kTransaction log record. Guarded by
  /// writer_mu_ in spirit (same regime as txn_manifest_).
  std::vector<std::string> txn_statements_;
  /// The data plane. shared_ptr: restore/resize swap it while pinned
  /// readers finish on the old one (it dies when the last drains).
  std::shared_ptr<cluster::Cluster> cluster_;
  /// The object store: owned by default, external when
  /// WarehouseOptions::shared_s3 points at one (crash-recovery tests
  /// restart "the process" as a fresh Warehouse over the same S3).
  backup::S3 owned_s3_;
  backup::S3* const s3_;
  backup::BackupManager backups_;
  durability::CommitLog commit_log_;
  chaos::CrashController crash_;
  /// Recovery in progress: the front door returns kUnavailable to
  /// everyone except the replay path itself.
  std::atomic<bool> recovering_{false};
  std::atomic<bool> replaying_{false};
  /// Highest LSN whose effects are in the live data plane — the
  /// idempotency guard replay skips through.
  std::atomic<uint64_t> applied_lsn_{0};
  sim::Engine health_engine_;
  controlplane::ControlPlane control_plane_{&health_engine_};
  std::vector<controlplane::HostManager> host_managers_;
  obs::QueryLog query_log_;
  obs::EventLog event_log_;
  obs::ScanLog scan_log_;
  obs::InflightRegistry inflight_;
  obs::GaugeHistory gauges_{options_.gauge_history_capacity};
  obs::AlertLog alerts_;

  /// Lock order: admission slot -> writer_mu_ -> data_mu_ -> cache_mu_
  /// (then the caches' and data plane's internal locks, leaf-level).
  ///
  /// writer_mu_ serializes whole mutating statements (DDL/DML/COPY/
  /// VACUUM), transactions, backups, cluster swaps and health sweeps —
  /// it is never taken by SELECTs, so writers exclude each other
  /// without blocking readers.
  ///
  /// data_mu_ is the snapshot-coherence lock, held only for moments:
  /// readers take it shared to pin {cluster_, versions, shard
  /// snapshot} as one coherent triple; writers take it exclusive just
  /// to bump versions and install already-prepared chains (or swap
  /// cluster_). No I/O, parsing, sorting or encoding ever happens
  /// under it. txn_manifest_ / host_managers_ are guarded by
  /// writer_mu_ in spirit but deliberately not annotated —
  /// single-threaded tooling (data_plane(), benches) reads them
  /// lock-free by design.
  mutable common::Mutex writer_mu_ SDW_ACQUIRED_BEFORE(data_mu_){
      common::LockRank::kWarehouseWriter};
  mutable common::SharedMutex data_mu_ SDW_ACQUIRED_BEFORE(cache_mu_){
      common::LockRank::kWarehouseData};
  mutable common::Mutex cache_mu_ SDW_ACQUIRED_AFTER(data_mu_){
      common::LockRank::kWarehouseVersions};
  std::map<std::string, uint64_t> table_versions_ SDW_GUARDED_BY(cache_mu_);
  /// Statement fingerprints already seen by the result cache's miss
  /// path — the result-cache-repeat-miss alert's memory.
  std::set<uint64_t> seen_fingerprints_ SDW_GUARDED_BY(cache_mu_);

  cluster::AdmissionController admission_;
  SegmentCache segment_cache_;
  ResultCache result_cache_;
  std::atomic<int> next_session_id_{1};
};

}  // namespace sdw::warehouse

#endif  // SDW_WAREHOUSE_WAREHOUSE_H_
