#ifndef SDW_WAREHOUSE_SYSTEM_TABLES_H_
#define SDW_WAREHOUSE_SYSTEM_TABLES_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/executor.h"
#include "cluster/wlm.h"
#include "common/result.h"
#include "exec/batch.h"
#include "obs/alerts.h"
#include "obs/profiler.h"
#include "obs/query_log.h"
#include "plan/logical.h"
#include "plan/physical.h"
#include "warehouse/query_cache.h"

namespace sdw::warehouse {

/// True when `name` is one of the Redshift-style observability system
/// tables: stl_query, stl_span, stv_blocklist, stv_metrics,
/// stl_health_events, stl_wlm, stv_cache, stl_scan, stv_inflight,
/// stv_gauge_history, stl_alert_event_log.
bool IsSystemTable(const std::string& name);

struct SystemQueryResult {
  exec::Batch rows;
  std::vector<std::string> column_names;
};

/// Everything a system-table SELECT may materialize from. The caller
/// (the warehouse) fills in pointers to its live components plus a
/// consistent copy of the table-version counters (used by stv_cache to
/// mark entries live vs stale).
struct SystemTableSources {
  const obs::QueryLog* query_log = nullptr;
  const obs::EventLog* event_log = nullptr;
  cluster::Cluster* cluster = nullptr;
  const cluster::AdmissionController* wlm = nullptr;
  SegmentCache* segment_cache = nullptr;
  ResultCache* result_cache = nullptr;
  const obs::ScanLog* scan_log = nullptr;
  const obs::InflightRegistry* inflight = nullptr;
  const obs::GaugeHistory* gauges = nullptr;
  const obs::AlertLog* alerts = nullptr;
  std::map<std::string, uint64_t> table_versions;
};

/// Executes a single-table SELECT whose FROM is a system table. The
/// table is materialized from the warehouse's query/event logs, the
/// cluster's block chains, the global metrics registry, the admission
/// controller's history (stl_wlm), or the plan/result caches
/// (stv_cache), then the query runs through the ordinary planner and
/// leader operators (filter, aggregate, project, sort, limit) — system
/// tables are just tables. Joins are not supported.
Result<SystemQueryResult> ExecuteSystemQuery(const plan::LogicalQuery& query,
                                             const SystemTableSources& sources);

/// Renders the physical plan annotated with counters from the recorded
/// trace (EXPLAIN ANALYZE). `trace` may be null (tracing disabled); the
/// annotation then falls back to ExecStats totals only. Scan lines are
/// further annotated with per-scan zone-map accounting (blocks read vs
/// skipped) when the result carries ScanProfiles, and any performance
/// alerts the query fired are appended at the end.
std::string RenderExplainAnalyze(const plan::PhysicalQuery& query,
                                 const cluster::QueryResult& result,
                                 const std::vector<obs::AlertEvent>& alerts = {});

}  // namespace sdw::warehouse

#endif  // SDW_WAREHOUSE_SYSTEM_TABLES_H_
