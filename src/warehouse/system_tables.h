#ifndef SDW_WAREHOUSE_SYSTEM_TABLES_H_
#define SDW_WAREHOUSE_SYSTEM_TABLES_H_

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/executor.h"
#include "common/result.h"
#include "exec/batch.h"
#include "obs/query_log.h"
#include "plan/logical.h"
#include "plan/physical.h"

namespace sdw::warehouse {

/// True when `name` is one of the Redshift-style observability system
/// tables: stl_query, stl_span, stv_blocklist, stv_metrics,
/// stl_health_events.
bool IsSystemTable(const std::string& name);

struct SystemQueryResult {
  exec::Batch rows;
  std::vector<std::string> column_names;
};

/// Executes a single-table SELECT whose FROM is a system table. The
/// table is materialized from the warehouse's query/event logs, the
/// cluster's block chains, or the global metrics registry, then the
/// query runs through the ordinary planner and leader operators
/// (filter, aggregate, project, sort, limit) — system tables are just
/// tables. Joins are not supported.
Result<SystemQueryResult> ExecuteSystemQuery(const plan::LogicalQuery& query,
                                             const obs::QueryLog& query_log,
                                             const obs::EventLog& event_log,
                                             cluster::Cluster* cluster);

/// Renders the physical plan annotated with counters from the recorded
/// trace (EXPLAIN ANALYZE). `trace` may be null (tracing disabled); the
/// annotation then falls back to ExecStats totals only.
std::string RenderExplainAnalyze(const plan::PhysicalQuery& query,
                                 const cluster::QueryResult& result);

}  // namespace sdw::warehouse

#endif  // SDW_WAREHOUSE_SYSTEM_TABLES_H_
