#ifndef SDW_WAREHOUSE_QUERY_CACHE_H_
#define SDW_WAREHOUSE_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "exec/batch.h"
#include "obs/registry.h"
#include "plan/physical.h"

namespace sdw::warehouse {

/// Snapshot of the version counters of the tables a query reads, taken
/// under the warehouse data lock. A cache entry is servable only while
/// every table it was computed from is still at its captured version —
/// any DML/COPY/VACUUM/DROP/restore bumps the touched counters, so a
/// stale entry can never match again.
using TableVersions = std::vector<std::pair<std::string, uint64_t>>;

struct CacheConfig {
  /// Reuse lowered plans for repeated query shapes, skipping planning
  /// and the per-query compile_seconds charge (§2.1's compilation cost
  /// amortized across the repeat-heavy dashboard workloads of
  /// PAPERS.md's Redbench).
  bool enable_segment_cache = true;
  size_t segment_cache_entries = 128;
  /// Serve byte-identical repeat queries straight from memory without
  /// occupying a WLM slot.
  bool enable_result_cache = true;
  size_t result_cache_entries = 128;
};

/// The standard counter set of one cache instance.
struct CacheMetrics {
  obs::Counter* hits = nullptr;
  obs::Counter* misses = nullptr;
  obs::Counter* insertions = nullptr;
  obs::Counter* evictions = nullptr;
};

/// Registers hits/misses/insertions/evictions counters under `prefix`,
/// which must follow the repo metric naming rule (sdw_<module>_<name>,
/// enforced by tools/lint.py on the literal at the call site), e.g.
/// MakeCacheMetrics("sdw_cache_result") -> sdw_cache_result_hits, ...
CacheMetrics MakeCacheMetrics(const std::string& prefix);

/// Deep copy of a batch (cached results must not alias caller rows).
exec::Batch CloneBatch(const exec::Batch& batch);

/// A bounded, internally synchronized LRU map from plan fingerprint to
/// a cached value. Lookups compare the full canonical text (a 64-bit
/// fingerprint is a bucket key, not an equality proof) and the table
/// versions the value was computed under; a version mismatch is a miss
/// and the stale entry is dropped on the spot.
template <typename V>
class LruQueryCache {
 public:
  LruQueryCache(size_t capacity, CacheMetrics metrics)
      : capacity_(capacity < 1 ? 1 : capacity), metrics_(metrics) {}

  /// The cache's registry counters (gauge sampling reads hit rates off
  /// them; note the counters are process-global per prefix).
  const CacheMetrics& metrics() const { return metrics_; }

  std::shared_ptr<const V> Lookup(uint64_t fingerprint,
                                  const std::string& canonical_text,
                                  const TableVersions& versions)
      SDW_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    auto it = entries_.find(fingerprint);
    if (it == entries_.end() || it->second.canonical_text != canonical_text) {
      metrics_.misses->Add();
      return nullptr;
    }
    if (it->second.versions != versions) {
      // Invalidated by a write since insertion: unservable forever
      // (versions only move forward), so reclaim the entry eagerly.
      lru_.erase(it->second.lru_pos);
      entries_.erase(it);
      metrics_.misses->Add();
      return nullptr;
    }
    ++it->second.hits;
    lru_.splice(lru_.end(), lru_, it->second.lru_pos);
    metrics_.hits->Add();
    return it->second.value;
  }

  void Insert(uint64_t fingerprint, std::string canonical_text,
              TableVersions versions, std::shared_ptr<const V> value)
      SDW_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    auto it = entries_.find(fingerprint);
    if (it != entries_.end()) {
      // Same shape recomputed (or a hash collision): newest wins.
      lru_.splice(lru_.end(), lru_, it->second.lru_pos);
      it->second.canonical_text = std::move(canonical_text);
      it->second.versions = std::move(versions);
      it->second.value = std::move(value);
      it->second.hits = 0;
      metrics_.insertions->Add();
      return;
    }
    while (entries_.size() >= capacity_) {
      entries_.erase(lru_.front());
      lru_.pop_front();
      metrics_.evictions->Add();
    }
    Entry entry;
    entry.canonical_text = std::move(canonical_text);
    entry.versions = std::move(versions);
    entry.value = std::move(value);
    entry.lru_pos = lru_.insert(lru_.end(), fingerprint);
    entries_.emplace(fingerprint, std::move(entry));
    metrics_.insertions->Add();
  }

  /// One entry as surfaced through stv_cache.
  struct EntryView {
    uint64_t fingerprint = 0;
    std::string canonical_text;
    TableVersions versions;
    uint64_t hits = 0;
    std::shared_ptr<const V> value;
  };

  /// All live entries ordered by fingerprint (deterministic for a
  /// deterministic workload, independent of insertion order).
  std::vector<EntryView> Entries() const SDW_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    std::vector<EntryView> out;
    out.reserve(entries_.size());
    for (const auto& [fp, entry] : entries_) {
      out.push_back({fp, entry.canonical_text, entry.versions, entry.hits,
                     entry.value});
    }
    return out;
  }

  size_t size() const SDW_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return entries_.size();
  }

 private:
  struct Entry {
    std::string canonical_text;
    TableVersions versions;
    std::shared_ptr<const V> value;
    uint64_t hits = 0;
    std::list<uint64_t>::iterator lru_pos;
  };

  const size_t capacity_;
  CacheMetrics metrics_;
  mutable common::Mutex mu_{common::LockRank::kQueryCache};
  /// Least recently used at the front. std::map keeps Entries() ordered.
  std::list<uint64_t> lru_ SDW_GUARDED_BY(mu_);
  std::map<uint64_t, Entry> entries_ SDW_GUARDED_BY(mu_);
};

/// A finished SELECT held by the result cache.
struct CachedResult {
  exec::Batch rows;
  std::vector<std::string> column_names;
};

using SegmentCache = LruQueryCache<plan::PhysicalQuery>;
using ResultCache = LruQueryCache<CachedResult>;

}  // namespace sdw::warehouse

#endif  // SDW_WAREHOUSE_QUERY_CACHE_H_
