#include "warehouse/query_cache.h"

#include "common/logging.h"

namespace sdw::warehouse {

CacheMetrics MakeCacheMetrics(const std::string& prefix) {
  obs::Registry& registry = obs::Registry::Global();
  CacheMetrics metrics;
  metrics.hits = registry.counter(prefix + "_hits");
  metrics.misses = registry.counter(prefix + "_misses");
  metrics.insertions = registry.counter(prefix + "_insertions");
  metrics.evictions = registry.counter(prefix + "_evictions");
  return metrics;
}

exec::Batch CloneBatch(const exec::Batch& batch) {
  exec::Batch out = exec::MakeBatch(batch.Types());
  for (size_t c = 0; c < batch.columns.size(); ++c) {
    SDW_CHECK_OK(out.columns[c].AppendRange(batch.columns[c], 0,
                                            batch.columns[c].size()));
  }
  return out;
}

}  // namespace sdw::warehouse
