#include "warehouse/warehouse.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "obs/registry.h"
#include "plan/fingerprint.h"
#include "sim/stopwatch.h"
#include "warehouse/system_tables.h"

namespace sdw::warehouse {

namespace {

/// Renders one datum for the text table.
std::string Cell(const Datum& value) {
  if (value.is_null()) return "NULL";
  if (value.type() == TypeId::kString) return value.string_value();
  return value.ToString();
}

/// Admits, or records a "timeout" stl_wlm row when admission fails so
/// cancelled statements show up in the history too.
Result<cluster::AdmissionController::Slot> AdmitOrReport(
    cluster::AdmissionController* admission, int session_id,
    const std::string& statement) {
  Result<cluster::AdmissionController::Slot> slot = admission->Admit();
  if (!slot.ok()) {
    cluster::AdmissionController::Report report;
    report.session_id = session_id;
    report.state = "timeout";
    report.statement = statement;
    report.queued_seconds = admission->config().queue_timeout_seconds;
    admission->Record(std::move(report));
  }
  return slot;
}

/// Records one stl_wlm row when the scope ends, whatever the exit path
/// (success, error, early return). The state starts out "error" and is
/// upgraded on success; exec time is measured by the scope's lifetime.
class WlmReportScope {
 public:
  WlmReportScope(cluster::AdmissionController* admission, int session_id,
                 std::string statement, double queued_seconds)
      : admission_(admission) {
    report_.session_id = session_id;
    report_.statement = std::move(statement);
    report_.state = "error";
    report_.queued_seconds = queued_seconds;
  }
  ~WlmReportScope() {
    report_.exec_seconds = timer_.Seconds();
    admission_->Record(std::move(report_));
  }
  WlmReportScope(const WlmReportScope&) = delete;
  WlmReportScope& operator=(const WlmReportScope&) = delete;

  void set_state(const std::string& state) { report_.state = state; }

 private:
  cluster::AdmissionController* admission_;
  cluster::AdmissionController::Report report_;
  sim::Stopwatch timer_;
};

}  // namespace

std::string StatementResult::ToTable(size_t max_rows) const {
  const size_t ncols = rows.num_columns();
  if (ncols == 0) return message + "\n";
  const size_t nrows = std::min<size_t>(rows.num_rows(), max_rows);
  std::vector<std::vector<std::string>> cells(nrows + 1);
  std::vector<size_t> widths(ncols, 0);
  for (size_t c = 0; c < ncols; ++c) {
    std::string name =
        c < column_names.size() ? column_names[c] : "col" + std::to_string(c);
    widths[c] = name.size();
    cells[0].push_back(std::move(name));
  }
  for (size_t r = 0; r < nrows; ++r) {
    for (size_t c = 0; c < ncols; ++c) {
      std::string cell = Cell(rows.columns[c].DatumAt(r));
      widths[c] = std::max(widths[c], cell.size());
      cells[r + 1].push_back(std::move(cell));
    }
  }
  std::string out;
  for (size_t r = 0; r < cells.size(); ++r) {
    for (size_t c = 0; c < ncols; ++c) {
      out += cells[r][c];
      out.append(widths[c] - cells[r][c].size() + 2, ' ');
    }
    out += "\n";
    if (r == 0) {
      for (size_t c = 0; c < ncols; ++c) {
        out.append(widths[c], '-');
        out.append(2, ' ');
      }
      out += "\n";
    }
  }
  if (rows.num_rows() > nrows) {
    out += "... (" + std::to_string(rows.num_rows()) + " rows total)\n";
  } else {
    out += "(" + std::to_string(rows.num_rows()) + " rows)\n";
  }
  return out;
}

Warehouse::Warehouse(WarehouseOptions options)
    : options_(options),
      cluster_(std::make_unique<cluster::Cluster>(options.cluster)),
      backups_(&s3_, options.region, options.cluster_id),
      admission_(options.wlm),
      segment_cache_(options.cache.segment_cache_entries,
                     MakeCacheMetrics("sdw_cache_segment")),
      result_cache_(options.cache.result_cache_entries,
                    MakeCacheMetrics("sdw_cache_result")) {
  if (options_.encrypted) {
    master_provider_ = std::make_unique<security::ServiceKeyProvider>(
        Hash64(std::string_view(options_.cluster_id)));
    auto hierarchy = security::KeyHierarchy::Create(master_provider_.get());
    SDW_CHECK(hierarchy.ok()) << hierarchy.status();
    keys_ = std::make_unique<security::KeyHierarchy>(
        std::move(hierarchy).ValueOrDie());
    WireEncryption();
  }
  control_plane_.set_event_log(&event_log_);
  SyncHostManagers();
}

Warehouse::Session Warehouse::CreateSession() {
  return Session(this, next_session_id_.fetch_add(1));
}

void Warehouse::SyncHostManagers() {
  host_managers_.clear();
  for (int n = 0; n < cluster_->num_nodes(); ++n) {
    host_managers_.emplace_back(options_.host_manager);
  }
}

TableVersions Warehouse::SnapshotVersions(
    const std::vector<std::string>& tables) {
  common::MutexLock lock(cache_mu_);
  TableVersions out;
  out.reserve(tables.size());
  for (const std::string& t : tables) out.emplace_back(t, table_versions_[t]);
  return out;
}

void Warehouse::BumpVersions(const std::vector<std::string>& tables) {
  static obs::Counter* invalidations =
      obs::Registry::Global().counter("sdw_cache_invalidations");
  common::MutexLock lock(cache_mu_);
  for (const std::string& t : tables) {
    ++table_versions_[t];
    invalidations->Add();
  }
}

void Warehouse::BumpAllVersions() {
  static obs::Counter* invalidations =
      obs::Registry::Global().counter("sdw_cache_invalidations");
  common::MutexLock lock(cache_mu_);
  for (auto& [name, version] : table_versions_) {
    ++version;
    invalidations->Add();
  }
}

Result<HealthStats> Warehouse::RunHealthSweep() {
  // Exclusive: the sweep restores nodes and rewires replication while
  // it runs; queries resume (and mask whatever remains) afterwards.
  common::WriterMutexLock data_lock(data_mu_);
  replication::ReplicationManager* repl = cluster_->replication();
  if (repl == nullptr) {
    return Status::FailedPrecondition(
        "health sweep requires a replicated cluster (set "
        "ClusterConfig::replicate with >= 2 nodes)");
  }
  HealthStats stats;
  std::vector<int> to_replace;
  for (int n = 0; n < cluster_->num_nodes(); ++n) {
    const bool dead = repl->IsNodeFailed(n);
    const bool flaky =
        cluster_->node_read_failures(n) >=
        static_cast<uint64_t>(options_.health_read_failure_threshold);
    if (!dead && !flaky) {
      host_managers_[n].OnHeartbeat();
      continue;
    }
    ++stats.unhealthy_nodes;
    if (dead) {
      // No process left to restart: straight to replacement.
      to_replace.push_back(n);
      continue;
    }
    // Repeated masked read failures look like a crashing/sick process:
    // the host manager restarts it locally until its budget runs out.
    if (host_managers_[n].OnProcessCrash()) {
      ++stats.restarts;
      event_log_.Record("host_manager", "restart", n,
                        static_cast<double>(cluster_->node_read_failures(n)),
                        "process restart after repeated masked read failures");
      cluster_->ResetNodeReadFailures(n);
    } else {
      SDW_LOG(Warning) << "node " << n
                       << " exceeded its restart budget; escalating to "
                          "control-plane replacement";
      event_log_.Record("host_manager", "escalate", n, 0,
                        "restart budget exhausted");
      repl->FailNode(n);
      to_replace.push_back(n);
    }
  }

  // Heal what can be healed before (and regardless of) replacements:
  // every under-replicated block with a healthy peer gets its second
  // copy back.
  SDW_ASSIGN_OR_RETURN(int rereplicated, repl->ReReplicate());
  stats.blocks_rereplicated = static_cast<uint64_t>(rereplicated);
  if (rereplicated > 0) {
    event_log_.Record("sweep", "rereplicate", -1,
                      static_cast<double>(rereplicated),
                      "blocks copied back to two-copy");
  }

  for (int n : to_replace) {
    controlplane::OpResult op = control_plane_.ReplaceNode();
    ++stats.escalations;
    stats.control_plane_seconds += op.seconds;
    // The replacement node comes up empty but healthy; the next sweep's
    // ReReplicate() refills it.
    repl->RestoreNode(n);
    cluster_->ResetNodeReadFailures(n);
    host_managers_[n] = controlplane::HostManager(options_.host_manager);
  }

  stats.single_copy_blocks = repl->CountSingleCopyBlocks();
  stats.lost_blocks = repl->CountLostBlocks();
  if (stats.single_copy_blocks > 0) {
    SDW_LOG(Warning) << stats.single_copy_blocks
                     << " blocks at a single copy (degraded mode: serving "
                        "continues, next sweep re-replicates)";
    event_log_.Record("sweep", "degraded", -1,
                      static_cast<double>(stats.single_copy_blocks),
                      "blocks at a single copy after sweep");
  }
  return stats;
}

void Warehouse::WireEncryption() { WireEncryptionOn(cluster_.get()); }

void Warehouse::WireEncryptionOn(cluster::Cluster* target) {
  if (keys_ == nullptr) return;
  security::KeyHierarchy* keys = keys_.get();
  for (int n = 0; n < target->num_nodes(); ++n) {
    storage::BlockStore* store = target->node(n)->store();
    store->set_write_transform(
        [keys](storage::BlockId id, Bytes data) -> Result<Bytes> {
          return keys->EncryptBlock(id, std::move(data));
        });
    store->set_read_transform(
        [keys](storage::BlockId id, Bytes data) -> Result<Bytes> {
          return keys->DecryptBlock(id, std::move(data));
        });
  }
}

Status Warehouse::RotateKeys() {
  if (keys_ == nullptr) {
    return Status::FailedPrecondition("warehouse is not encrypted");
  }
  // Exclusive: rotation rewraps block keys while reads decrypt through
  // them. Data and results are untouched — no version bump.
  common::WriterMutexLock data_lock(data_mu_);
  return keys_->RotateClusterKey();
}

Status Warehouse::Begin() {
  common::WriterMutexLock data_lock(data_mu_);
  if (in_transaction()) {
    return Status::FailedPrecondition("already in a transaction");
  }
  SDW_ASSIGN_OR_RETURN(txn_manifest_, backup::CaptureManifest(cluster_.get()));
  in_txn_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

Status Warehouse::Commit() {
  common::WriterMutexLock data_lock(data_mu_);
  if (!in_transaction()) {
    return Status::FailedPrecondition("no open transaction");
  }
  in_txn_.store(false, std::memory_order_relaxed);
  txn_manifest_ = backup::SnapshotManifest{};
  return Status::OK();
}

Status Warehouse::Rollback() {
  common::WriterMutexLock data_lock(data_mu_);
  if (!in_transaction()) {
    return Status::FailedPrecondition("no open transaction");
  }
  // Every table may snap back to its captured chains: invalidate all
  // cached plans/results before touching anything.
  BumpAllVersions();
  // Tables created inside the transaction disappear entirely.
  std::set<std::string> pre_txn;
  for (const auto& table : txn_manifest_.tables) {
    pre_txn.insert(table.schema.name());
  }
  for (const std::string& name : cluster_->catalog()->TableNames()) {
    if (!pre_txn.count(name)) {
      SDW_RETURN_IF_ERROR(cluster_->DropTable(name));
    }
  }
  // Pre-existing tables snap back to their captured chains. Blocks are
  // immutable and never deleted mid-transaction, so the old chains are
  // fully intact; blocks appended during the transaction become
  // garbage on the device (reclaimed by the next VACUUM).
  for (const auto& table : txn_manifest_.tables) {
    const std::string& name = table.schema.name();
    SDW_ASSIGN_OR_RETURN(TableSchema * live,
                         cluster_->catalog()->GetTableMutable(name));
    *live = table.schema;  // undo analyzer-assigned encodings etc.
    for (const auto& shard : table.shards) {
      cluster::ComputeNode* node = cluster_->NodeOfSlice(shard.global_slice);
      auto fresh = std::make_unique<storage::TableShard>(
          table.schema, cluster_->config().storage, node->store());
      SDW_RETURN_IF_ERROR(fresh->LoadChains(shard.chains));
      SDW_RETURN_IF_ERROR(node->ReplaceShard(
          cluster_->LocalSlice(shard.global_slice), name, std::move(fresh)));
    }
    TableStats stats;
    stats.row_count = table.stats_row_count;
    stats.columns.resize(table.schema.num_columns());
    cluster_->catalog()->UpdateStats(name, stats);
  }
  in_txn_.store(false, std::memory_order_relaxed);
  txn_manifest_ = backup::SnapshotManifest{};
  return Status::OK();
}

Result<StatementResult> Warehouse::Execute(const std::string& sql) {
  return ExecuteAs(sql, 0);
}

Result<StatementResult> Warehouse::ExecuteQuery(
    const plan::LogicalQuery& query) {
  return RunSelect(query, /*explain=*/false, /*explain_analyze=*/false,
                   plan::CanonicalText(query), /*session_id=*/0);
}

Result<StatementResult> Warehouse::ExecuteAs(const std::string& sql,
                                             int session_id) {
  SDW_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  if (auto* select = std::get_if<sql::SelectStmt>(&stmt)) {
    if (IsSystemTable(select->query.from_table)) {
      // System-table queries run on the leader against the logs/registry
      // and are not themselves recorded in stl_query (monitoring should
      // not pollute what it monitors). They also bypass admission — the
      // operator must be able to read stl_wlm while the queue is full.
      if (select->explain) {
        return Status::NotSupported(
            "EXPLAIN is not supported on system tables");
      }
      common::ReaderMutexLock data_lock(data_mu_);
      SystemTableSources sources;
      sources.query_log = &query_log_;
      sources.event_log = &event_log_;
      sources.cluster = cluster_.get();
      sources.wlm = &admission_;
      sources.segment_cache = &segment_cache_;
      sources.result_cache = &result_cache_;
      {
        common::MutexLock versions_lock(cache_mu_);
        sources.table_versions = table_versions_;
      }
      SDW_ASSIGN_OR_RETURN(SystemQueryResult sys,
                           ExecuteSystemQuery(select->query, sources));
      StatementResult result;
      result.rows = std::move(sys.rows);
      result.column_names = std::move(sys.column_names);
      result.message = std::to_string(result.rows.num_rows()) + " rows";
      return result;
    }
    return RunSelect(select->query, select->explain, select->explain_analyze,
                     sql, session_id);
  }
  return RunStatement(std::move(stmt), sql, session_id);
}

Result<StatementResult> Warehouse::RunSelect(const plan::LogicalQuery& query,
                                             bool explain,
                                             bool explain_analyze,
                                             const std::string& sql_text,
                                             int session_id) {
  StatementResult result;
  if (explain && !explain_analyze) {
    // Plain EXPLAIN plans but does not run, occupy a slot, or touch the
    // caches.
    common::ReaderMutexLock data_lock(data_mu_);
    plan::Planner planner(cluster_->catalog(), options_.planner);
    SDW_ASSIGN_OR_RETURN(plan::PhysicalQuery physical, planner.Plan(query));
    result.message = physical.ToString();
    return result;
  }

  const std::string canonical = plan::CanonicalText(query);
  const uint64_t fingerprint = Hash64(std::string_view(canonical));
  std::vector<std::string> tables{query.from_table};
  if (query.join_table.has_value()) tables.push_back(*query.join_table);

  // Result-cache fast path: a repeat query over unchanged tables is
  // answered from memory without occupying a WLM slot. The shared data
  // lock pins the version snapshot — a writer bumps versions before
  // writing, under the exclusive lock, so a hit here can never reflect
  // pre-write data after the write.
  if (options_.cache.enable_result_cache && !explain_analyze) {
    common::ReaderMutexLock data_lock(data_mu_);
    const TableVersions versions = SnapshotVersions(tables);
    std::shared_ptr<const CachedResult> hit =
        result_cache_.Lookup(fingerprint, canonical, versions);
    if (hit != nullptr) {
      obs::QueryLog::Started started = query_log_.StartQuery();
      obs::QueryRecord record;
      record.query_id = started.query_id;
      record.sql_text = sql_text;
      record.start_tick = started.start_tick;
      record.status = "success";
      record.result_rows = hit->rows.num_rows();
      record.counters.rows_out = record.result_rows;
      query_log_.FinishQuery(std::move(record));
      cluster::AdmissionController::Report report;
      report.session_id = session_id;
      report.state = "result_cache";
      report.statement = sql_text;
      admission_.Record(std::move(report));
      result.rows = CloneBatch(hit->rows);
      result.column_names = hit->column_names;
      result.message = std::to_string(result.rows.num_rows()) + " rows";
      result.from_result_cache = true;
      return result;
    }
  }

  SDW_ASSIGN_OR_RETURN(cluster::AdmissionController::Slot slot,
                       AdmitOrReport(&admission_, session_id, sql_text));
  WlmReportScope report(&admission_, session_id, sql_text,
                        slot.queued_seconds());
  common::ReaderMutexLock data_lock(data_mu_);
  const TableVersions versions = SnapshotVersions(tables);

  std::shared_ptr<const plan::PhysicalQuery> physical;
  bool segment_hit = false;
  if (options_.cache.enable_segment_cache) {
    physical = segment_cache_.Lookup(fingerprint, canonical, versions);
    segment_hit = physical != nullptr;
  }
  if (physical == nullptr) {
    plan::Planner planner(cluster_->catalog(), options_.planner);
    SDW_ASSIGN_OR_RETURN(plan::PhysicalQuery planned, planner.Plan(query));
    auto owned =
        std::make_shared<const plan::PhysicalQuery>(std::move(planned));
    if (options_.cache.enable_segment_cache) {
      segment_cache_.Insert(fingerprint, canonical, versions, owned);
    }
    physical = std::move(owned);
  }

  obs::QueryLog::Started started = query_log_.StartQuery();
  obs::QueryRecord record;
  record.query_id = started.query_id;
  record.sql_text = sql_text;
  record.start_tick = started.start_tick;
  cluster::ExecOptions exec_options = options_.exec;
  exec_options.segment_cache_hit = segment_hit;
  cluster::QueryExecutor executor(cluster_.get(), exec_options);
  Result<cluster::QueryResult> executed = executor.Execute(*physical);
  if (!executed.ok()) {
    record.status = "error";
    query_log_.FinishQuery(std::move(record));
    return executed.status();
  }
  cluster::QueryResult query_result = std::move(executed).ValueOrDie();
  record.status = "success";
  record.result_rows = query_result.stats.result_rows;
  record.counters.rows_out = query_result.stats.result_rows;
  record.counters.blocks_decoded = query_result.stats.blocks_decoded;
  record.counters.bytes_shuffled = query_result.stats.network_bytes;
  record.counters.masked_reads = query_result.stats.masked_reads;
  record.counters.s3_fault_reads = query_result.stats.s3_fault_reads;
  if (query_result.trace != nullptr &&
      query_result.trace->root() != nullptr) {
    // The admission wait precedes everything the executor recorded:
    // stage -1 lays out before compile/pipelines. One deterministic
    // tick — the real queue time is wall clock and belongs to stl_wlm,
    // never to the virtual timeline.
    query_result.trace->AddSpan("wlm admit",
                                query_result.trace->root()->span_id,
                                /*stage=*/-1);
  }
  record.trace = query_result.trace;
  // FinishQuery assigns the trace's virtual timestamps, so the EXPLAIN
  // ANALYZE rendering below sees final ticks.
  query_log_.FinishQuery(std::move(record));
  report.set_state("run");
  if (explain_analyze) {
    result.exec_stats = query_result.stats;
    result.message = RenderExplainAnalyze(*physical, query_result);
    return result;
  }
  if (options_.cache.enable_result_cache) {
    auto cached = std::make_shared<CachedResult>();
    cached->rows = CloneBatch(query_result.rows);
    cached->column_names = query_result.column_names;
    result_cache_.Insert(fingerprint, canonical, versions, std::move(cached));
  }
  result.rows = std::move(query_result.rows);
  result.column_names = std::move(query_result.column_names);
  result.exec_stats = query_result.stats;
  result.message = std::to_string(result.rows.num_rows()) + " rows";
  return result;
}

Result<StatementResult> Warehouse::RunStatement(sql::Statement stmt,
                                                const std::string& sql,
                                                int session_id) {
  StatementResult result;
  if (auto* txn = std::get_if<sql::TxnStmt>(&stmt)) {
    // Transaction control is leader metadata work: no slot, no queue.
    switch (txn->kind) {
      case sql::TxnStmt::Kind::kBegin:
        SDW_RETURN_IF_ERROR(Begin());
        result.message = "BEGIN";
        break;
      case sql::TxnStmt::Kind::kCommit:
        SDW_RETURN_IF_ERROR(Commit());
        result.message = "COMMIT";
        break;
      case sql::TxnStmt::Kind::kRollback:
        SDW_RETURN_IF_ERROR(Rollback());
        result.message = "ROLLBACK";
        break;
    }
    return result;
  }
  if (in_transaction() && (std::holds_alternative<sql::DropTableStmt>(stmt) ||
                           std::holds_alternative<sql::VacuumStmt>(stmt))) {
    return Status::NotSupported(
        "DROP TABLE / VACUUM reclaim blocks eagerly and cannot run inside "
        "a transaction");
  }

  // Writes go through the same front door as queries, then take the
  // data plane exclusively. Versions bump BEFORE any mutation: a write
  // that fails halfway has still invalidated everything it might have
  // touched.
  SDW_ASSIGN_OR_RETURN(cluster::AdmissionController::Slot slot,
                       AdmitOrReport(&admission_, session_id, sql));
  WlmReportScope report(&admission_, session_id, sql, slot.queued_seconds());
  common::WriterMutexLock data_lock(data_mu_);

  if (auto* create = std::get_if<sql::CreateTableStmt>(&stmt)) {
    BumpVersions({create->schema.name()});
    SDW_RETURN_IF_ERROR(cluster_->CreateTable(create->schema));
    result.message = "CREATE TABLE " + create->schema.name();
    report.set_state("run");
    return result;
  }
  if (auto* drop = std::get_if<sql::DropTableStmt>(&stmt)) {
    BumpVersions({drop->table});
    SDW_RETURN_IF_ERROR(cluster_->DropTable(drop->table));
    result.message = "DROP TABLE " + drop->table;
    report.set_state("run");
    return result;
  }
  if (auto* copy = std::get_if<sql::CopyStmt>(&stmt)) {
    BumpVersions({copy->table});
    load::CopyExecutor executor(cluster_.get(), &s3_, options_.region);
    load::CopyOptions copy_options;
    copy_options.format = copy->format == sql::CopyStmt::Format::kCsv
                              ? load::CopyFormat::kCsv
                              : load::CopyFormat::kJson;
    copy_options.compupdate = copy->compupdate;
    SDW_ASSIGN_OR_RETURN(result.copy_stats,
                         executor.CopyFromUri(copy->table, copy->source_uri,
                                              copy_options));
    result.message = "COPY " + std::to_string(result.copy_stats.rows_loaded) +
                     " rows into " + copy->table;
    report.set_state("run");
    return result;
  }
  if (auto* insert = std::get_if<sql::InsertStmt>(&stmt)) {
    SDW_ASSIGN_OR_RETURN(TableSchema schema,
                         cluster_->catalog()->GetTable(insert->table));
    std::vector<ColumnVector> columns;
    for (const ColumnDef& col : schema.columns()) {
      columns.emplace_back(col.type);
    }
    for (const Row& row : insert->rows) {
      if (row.size() != schema.num_columns()) {
        return Status::InvalidArgument("INSERT arity mismatch");
      }
      for (size_t c = 0; c < row.size(); ++c) {
        SDW_RETURN_IF_ERROR(columns[c].AppendDatum(row[c]));
      }
    }
    BumpVersions({insert->table});
    SDW_RETURN_IF_ERROR(cluster_->InsertRows(insert->table, columns));
    result.message =
        "INSERT " + std::to_string(insert->rows.size()) + " rows";
    report.set_state("run");
    return result;
  }
  if (auto* analyze = std::get_if<sql::AnalyzeStmt>(&stmt)) {
    // Fresh stats change plans, so cached segments must re-lower.
    BumpVersions({analyze->table});
    SDW_RETURN_IF_ERROR(cluster_->Analyze(analyze->table));
    result.message = "ANALYZE " + analyze->table;
    report.set_state("run");
    return result;
  }
  auto& vacuum = std::get<sql::VacuumStmt>(stmt);
  // Each COPY sorts its own run; VACUUM merges the accumulated runs
  // back into one fully-sorted region per slice.
  BumpVersions({vacuum.table});
  SDW_ASSIGN_OR_RETURN(uint64_t blocks, cluster_->Vacuum(vacuum.table));
  result.message = "VACUUM " + vacuum.table + " (" + std::to_string(blocks) +
                   " blocks rewritten)";
  report.set_state("run");
  return result;
}

Result<backup::BackupManager::BackupStats> Warehouse::Backup(
    bool user_initiated) {
  // Shared: a backup reads every chain but changes nothing; queries
  // may keep running around it.
  common::ReaderMutexLock data_lock(data_mu_);
  return backups_.Backup(cluster_.get(), user_initiated);
}

Status Warehouse::RestoreInPlace(uint64_t snapshot_id,
                                 backup::BackupManager::RestoreStats* stats) {
  common::WriterMutexLock data_lock(data_mu_);
  if (in_transaction()) {
    return Status::FailedPrecondition("cannot restore inside a transaction");
  }
  // The whole data plane is about to swap: nothing cached may survive.
  BumpAllVersions();
  SDW_ASSIGN_OR_RETURN(std::unique_ptr<cluster::Cluster> restored,
                       backups_.StreamingRestore(snapshot_id, stats));
  cluster_ = std::move(restored);
  // Page-faulted blocks arrive as stored (encrypted) bytes; reads must
  // keep unwrapping them.
  WireEncryption();
  SyncHostManagers();
  return Status::OK();
}

Result<cluster::Cluster::ResizeStats> Warehouse::Resize(int new_num_nodes) {
  common::WriterMutexLock data_lock(data_mu_);
  if (in_transaction()) {
    return Status::FailedPrecondition("cannot resize inside a transaction");
  }
  // Same rows on a different topology: results survive semantically but
  // cached plans are topology-bound, so everything re-derives.
  BumpAllVersions();
  cluster::Cluster::ResizeStats stats;
  // The target must encrypt blocks as the parallel copy lands, so its
  // stores get the at-rest transforms before any data moves.
  SDW_ASSIGN_OR_RETURN(
      std::unique_ptr<cluster::Cluster> target,
      cluster_->Resize(new_num_nodes, &stats,
                       [this](cluster::Cluster* fresh) {
                         WireEncryptionOn(fresh);
                       }));
  // Move the SQL endpoint and decommission the source (§3.1).
  cluster_ = std::move(target);
  SyncHostManagers();
  return stats;
}

}  // namespace sdw::warehouse
