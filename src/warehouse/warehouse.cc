#include "warehouse/warehouse.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "obs/registry.h"
#include "plan/fingerprint.h"
#include "sim/stopwatch.h"
#include "warehouse/system_tables.h"

namespace sdw::warehouse {

namespace {

/// Renders a pinned version set for stl_query's snapshot column:
/// "fact@3 dim@1".
std::string FormatVersions(const TableVersions& versions) {
  std::string out;
  for (const auto& [table, version] : versions) {
    if (!out.empty()) out += " ";
    out += table + "@" + std::to_string(version);
  }
  return out;
}

/// Renders one datum for the text table.
std::string Cell(const Datum& value) {
  if (value.is_null()) return "NULL";
  if (value.type() == TypeId::kString) return value.string_value();
  return value.ToString();
}

/// Admits, or records a "timeout" stl_wlm row when admission fails so
/// cancelled statements show up in the history too. The controller
/// fills the timeout report itself — the accrued queued_seconds across
/// every queue the caller hopped through, not the configured timeout.
Result<cluster::AdmissionController::Slot> AdmitOrReport(
    cluster::AdmissionController* admission,
    const cluster::AdmitRequest& request) {
  cluster::AdmissionController::Report timeout_report;
  Result<cluster::AdmissionController::Slot> slot =
      admission->Admit(request, &timeout_report);
  if (!slot.ok() && !timeout_report.state.empty()) {
    admission->Record(std::move(timeout_report));
  }
  return slot;
}

/// Records one stl_wlm row when the scope ends, whatever the exit path
/// (success, error, early return). The state starts out "error" and is
/// upgraded on success; exec time is measured by the scope's lifetime.
class WlmReportScope {
 public:
  WlmReportScope(cluster::AdmissionController* admission, int session_id,
                 std::string statement,
                 const cluster::AdmissionController::Slot& slot)
      : admission_(admission) {
    report_.session_id = session_id;
    report_.statement = std::move(statement);
    report_.state = "error";
    report_.queued_seconds = slot.queued_seconds();
    report_.queue = slot.queue();
    report_.hops = slot.hops();
  }
  ~WlmReportScope() {
    report_.exec_seconds = timer_.Seconds();
    admission_->Record(std::move(report_));
  }
  WlmReportScope(const WlmReportScope&) = delete;
  WlmReportScope& operator=(const WlmReportScope&) = delete;

  void set_state(const std::string& state) { report_.state = state; }

 private:
  cluster::AdmissionController* admission_;
  cluster::AdmissionController::Report report_;
  sim::Stopwatch timer_;
};

}  // namespace

std::string StatementResult::ToTable(size_t max_rows) const {
  const size_t ncols = rows.num_columns();
  if (ncols == 0) return message + "\n";
  const size_t nrows = std::min<size_t>(rows.num_rows(), max_rows);
  std::vector<std::vector<std::string>> cells(nrows + 1);
  std::vector<size_t> widths(ncols, 0);
  for (size_t c = 0; c < ncols; ++c) {
    std::string name =
        c < column_names.size() ? column_names[c] : "col" + std::to_string(c);
    widths[c] = name.size();
    cells[0].push_back(std::move(name));
  }
  for (size_t r = 0; r < nrows; ++r) {
    for (size_t c = 0; c < ncols; ++c) {
      std::string cell = Cell(rows.columns[c].DatumAt(r));
      widths[c] = std::max(widths[c], cell.size());
      cells[r + 1].push_back(std::move(cell));
    }
  }
  std::string out;
  for (size_t r = 0; r < cells.size(); ++r) {
    for (size_t c = 0; c < ncols; ++c) {
      out += cells[r][c];
      out.append(widths[c] - cells[r][c].size() + 2, ' ');
    }
    out += "\n";
    if (r == 0) {
      for (size_t c = 0; c < ncols; ++c) {
        out.append(widths[c], '-');
        out.append(2, ' ');
      }
      out += "\n";
    }
  }
  if (rows.num_rows() > nrows) {
    out += "... (" + std::to_string(rows.num_rows()) + " rows total)\n";
  } else {
    out += "(" + std::to_string(rows.num_rows()) + " rows)\n";
  }
  return out;
}

Warehouse::Warehouse(WarehouseOptions options)
    : options_(options),
      cluster_(std::make_shared<cluster::Cluster>(options.cluster)),
      s3_(options.shared_s3 != nullptr ? options.shared_s3 : &owned_s3_),
      backups_(s3_, options.region, options.cluster_id),
      commit_log_(s3_, options.region, options.cluster_id),
      admission_(options.wlm),
      segment_cache_(options.cache.segment_cache_entries,
                     MakeCacheMetrics("sdw_cache_segment")),
      result_cache_(options.cache.result_cache_entries,
                    MakeCacheMetrics("sdw_cache_result")) {
  if (options_.encrypted) {
    master_provider_ = std::make_unique<security::ServiceKeyProvider>(
        Hash64(std::string_view(options_.cluster_id)));
    auto hierarchy = security::KeyHierarchy::Create(master_provider_.get());
    SDW_CHECK(hierarchy.ok()) << hierarchy.status();
    keys_ = std::make_unique<security::KeyHierarchy>(
        std::move(hierarchy).ValueOrDie());
    WireEncryption();
  }
  control_plane_.set_event_log(&event_log_);
  commit_log_.set_retry_policy(options_.durability.retry);
  commit_log_.set_crash_controller(&crash_);
  SyncHostManagers();
}

Warehouse::Session Warehouse::CreateSession(std::string user_group) {
  return Session(this, next_session_id_.fetch_add(1), std::move(user_group));
}

Status Warehouse::CrashPoint(const char* site) {
  if (replaying_.load(std::memory_order_relaxed)) return Status::OK();
  return crash_.AtSite(site);
}

Status Warehouse::LogBeforeInstall(const std::string& sql, int session_id) {
  SDW_RETURN_IF_ERROR(CrashPoint(durability::kCrashPreLog));
  if (options_.durability.log_commits &&
      !replaying_.load(std::memory_order_relaxed)) {
    if (in_transaction()) {
      // Durability happens at COMMIT: the whole batch becomes one
      // atomic kTransaction record (a crash before then rolls back
      // everything, logged or not — nothing was logged).
      txn_statements_.push_back(sql);
    } else {
      durability::LogRecord record;
      record.kind = durability::LogRecord::Kind::kStatement;
      record.session_id = session_id;
      record.statements.push_back(sql);
      SDW_ASSIGN_OR_RETURN(uint64_t lsn,
                           commit_log_.Append(std::move(record)));
      applied_lsn_.store(lsn, std::memory_order_relaxed);
    }
  }
  return CrashPoint(durability::kCrashPostLogPreInstall);
}

std::function<Status(size_t)> Warehouse::MidInstallBarrier() {
  return [this](size_t installed) {
    return installed == 1 ? CrashPoint(durability::kCrashMidInstall)
                          : Status::OK();
  };
}

void Warehouse::SyncHostManagers() {
  host_managers_.clear();
  for (int n = 0; n < cluster_->num_nodes(); ++n) {
    host_managers_.emplace_back(options_.host_manager);
  }
}

TableVersions Warehouse::SnapshotVersions(
    const std::vector<std::string>& tables) {
  common::MutexLock lock(cache_mu_);
  TableVersions out;
  out.reserve(tables.size());
  for (const std::string& t : tables) out.emplace_back(t, table_versions_[t]);
  return out;
}

void Warehouse::BumpVersions(const std::vector<std::string>& tables) {
  static obs::Counter* invalidations =
      obs::Registry::Global().counter("sdw_cache_invalidations");
  common::MutexLock lock(cache_mu_);
  for (const std::string& t : tables) {
    ++table_versions_[t];
    invalidations->Add();
  }
}

void Warehouse::BumpAllVersions() {
  static obs::Counter* invalidations =
      obs::Registry::Global().counter("sdw_cache_invalidations");
  // Union of everything ever versioned and everything currently in the
  // catalog: a table this warehouse never touched (e.g. arriving with a
  // restored snapshot) must still get a counter, or queries against it
  // would cache at version 0 and survive the next whole-plane swap.
  // Callers hold writer_mu_, so cluster_ is stable here.
  std::vector<std::string> known = cluster_->catalog()->TableNames();
  common::MutexLock lock(cache_mu_);
  for (const std::string& name : known) table_versions_.emplace(name, 0);
  for (auto& [name, version] : table_versions_) {
    ++version;
    invalidations->Add();
  }
}

Result<Warehouse::PinnedSnapshot> Warehouse::PinSnapshot(
    const std::vector<std::string>& tables) {
  // The short shared hold that makes MVCC reads coherent: a writer
  // installs (bump + CommitStaged) under the exclusive mode, so the
  // {cluster, versions, chains} triple pinned here is all-before or
  // all-after any statement, never a mix.
  common::ReaderMutexLock data_lock(data_mu_);
  PinnedSnapshot pin;
  pin.cluster = cluster_;
  pin.versions = SnapshotVersions(tables);
  auto snapshot = std::make_shared<cluster::ReadSnapshot>();
  SDW_RETURN_IF_ERROR(pin.cluster->PinTables(tables, snapshot.get()));
  pin.snapshot = std::move(snapshot);
  return pin;
}

cluster::Cluster::GcStats Warehouse::CollectGarbage() {
  common::MutexLock statement_lock(writer_mu_);
  if (!crash_.Down().ok()) return {};
  return cluster_->CollectGarbage();
}

Result<HealthStats> Warehouse::RunHealthSweep() {
  // One sweep at a time, serialized with writers and cluster swaps on
  // writer_mu_ — but NOT on data_mu_: queries keep running (and keep
  // masking failed reads) while the sweep diagnoses, re-replicates and
  // waits out control-plane replacement workflows. Only the per-node
  // rewire below takes data_mu_ exclusively, and only for an instant.
  // (This used to hold data_mu_ exclusive across ReplaceNode's modeled
  // minutes-long workflow, stalling every query behind a sweep.)
  common::MutexLock statement_lock(writer_mu_);
  SDW_RETURN_IF_ERROR(crash_.Down());
  replication::ReplicationManager* repl = cluster_->replication();
  if (repl == nullptr) {
    return Status::FailedPrecondition(
        "health sweep requires a replicated cluster (set "
        "ClusterConfig::replicate with >= 2 nodes)");
  }
  // Gauge the pre-sweep state first: queue depth, cache hit rates, GC
  // backlog, degradation — the time series stv_gauge_history serves,
  // plus the sweep-time threshold alerts.
  if (options_.workload_intelligence) {
    auto hit_rate = [](const CacheMetrics& m) {
      const double hits = static_cast<double>(m.hits->value());
      const double misses = static_cast<double>(m.misses->value());
      return hits + misses > 0 ? hits / (hits + misses) : 0.0;
    };
    obs::GaugeSample sample;
    sample.tick = query_log_.now();
    sample.wlm_queued = static_cast<int>(admission_.queued());
    sample.wlm_running = admission_.running();
    sample.wlm_max_in_flight = admission_.max_in_flight();
    sample.result_cache_hit_rate = hit_rate(result_cache_.metrics());
    sample.segment_cache_hit_rate = hit_rate(segment_cache_.metrics());
    sample.gc_backlog = cluster_->PendingGarbage();
    sample.degraded_blocks = repl->CountSingleCopyBlocks();
    for (const cluster::AdmissionController::QueueStats& queue :
         admission_.queue_stats()) {
      obs::GaugeSample::QueueGauge gauge;
      gauge.name = queue.name;
      gauge.slots = queue.slots;
      gauge.queued = static_cast<int>(queue.queued);
      gauge.running = queue.running;
      gauge.max_in_flight = queue.max_in_flight;
      sample.queues.push_back(std::move(gauge));
    }
    gauges_.Record(sample);
    obs::SweepAlertInputs sweep_inputs;
    sweep_inputs.tick = sample.tick;
    sweep_inputs.sample = sample;
    sweep_inputs.wlm_slots = admission_.config().concurrency_slots;
    sweep_inputs.gc_threshold =
        options_.health_gc_threshold > 0
            ? static_cast<uint64_t>(options_.health_gc_threshold)
            : 0;
    alerts_.Record(obs::EvaluateSweepAlerts(sweep_inputs));
  }

  HealthStats stats;
  std::vector<int> to_replace;
  for (int n = 0; n < cluster_->num_nodes(); ++n) {
    const bool dead = repl->IsNodeFailed(n);
    const bool flaky =
        cluster_->node_read_failures(n) >=
        static_cast<uint64_t>(options_.health_read_failure_threshold);
    if (!dead && !flaky) {
      host_managers_[n].OnHeartbeat();
      continue;
    }
    ++stats.unhealthy_nodes;
    if (dead) {
      // No process left to restart: straight to replacement.
      to_replace.push_back(n);
      continue;
    }
    // Repeated masked read failures look like a crashing/sick process:
    // the host manager restarts it locally until its budget runs out.
    if (host_managers_[n].OnProcessCrash()) {
      ++stats.restarts;
      event_log_.Record("host_manager", "restart", n,
                        static_cast<double>(cluster_->node_read_failures(n)),
                        "process restart after repeated masked read failures");
      cluster_->ResetNodeReadFailures(n);
    } else {
      SDW_LOG(Warning) << "node " << n
                       << " exceeded its restart budget; escalating to "
                          "control-plane replacement";
      event_log_.Record("host_manager", "escalate", n, 0,
                        "restart budget exhausted");
      repl->FailNode(n);
      to_replace.push_back(n);
    }
  }

  // Heal what can be healed before (and regardless of) replacements:
  // every under-replicated block with a healthy peer gets its second
  // copy back.
  SDW_ASSIGN_OR_RETURN(int rereplicated, repl->ReReplicate());
  stats.blocks_rereplicated = static_cast<uint64_t>(rereplicated);
  if (rereplicated > 0) {
    event_log_.Record("sweep", "rereplicate", -1,
                      static_cast<double>(rereplicated),
                      "blocks copied back to two-copy");
  }

  for (int n : to_replace) {
    // The replacement workflow (provision, attach, handshake) is the
    // slow part — it runs off the data lock, queries unblocked.
    controlplane::OpResult op = control_plane_.ReplaceNode();
    ++stats.escalations;
    stats.control_plane_seconds += op.seconds;
    // Rewiring the node in is quick: a brief exclusive hold keeps any
    // in-flight read from straddling the restore. The replacement node
    // comes up empty but healthy; the next sweep's ReReplicate()
    // refills it.
    common::WriterMutexLock data_lock(data_mu_);
    repl->RestoreNode(n);
    cluster_->ResetNodeReadFailures(n);
    host_managers_[n] = controlplane::HostManager(options_.host_manager);
  }

  stats.single_copy_blocks = repl->CountSingleCopyBlocks();
  stats.lost_blocks = repl->CountLostBlocks();
  if (stats.single_copy_blocks > 0) {
    SDW_LOG(Warning) << stats.single_copy_blocks
                     << " blocks at a single copy (degraded mode: serving "
                        "continues, next sweep re-replicates)";
    event_log_.Record("sweep", "degraded", -1,
                      static_cast<double>(stats.single_copy_blocks),
                      "blocks at a single copy after sweep");
  }

  // Self-triggering MVCC GC: once retired versions and dropped shards
  // pile past the threshold, this sweep reclaims them — VACUUM/DROP
  // already collect inline, but retirees parked behind a since-drained
  // reader pin otherwise wait for someone to call CollectGarbage() by
  // hand. A still-pinned snapshot keeps deferring its blocks (GC never
  // touches pinned chains), so the sweep stays safe under live readers.
  const uint64_t pending = cluster_->PendingGarbage();
  if (options_.health_gc_threshold > 0 &&
      pending >= static_cast<uint64_t>(options_.health_gc_threshold)) {
    cluster::Cluster::GcStats gc = cluster_->CollectGarbage();
    stats.gc_triggered = true;
    stats.gc_versions_reclaimed = gc.versions_reclaimed;
    stats.gc_blocks_reclaimed = gc.blocks_reclaimed;
    event_log_.Record("sweep", "gc", -1,
                      static_cast<double>(gc.blocks_reclaimed),
                      "self-triggered GC at pending-garbage " +
                          std::to_string(pending));
  }
  return stats;
}

void Warehouse::WireEncryption() { WireEncryptionOn(cluster_.get()); }

void Warehouse::WireEncryptionOn(cluster::Cluster* target) {
  if (keys_ == nullptr) return;
  security::KeyHierarchy* keys = keys_.get();
  for (int n = 0; n < target->num_nodes(); ++n) {
    storage::BlockStore* store = target->node(n)->store();
    store->set_write_transform(
        [keys](storage::BlockId id, Bytes data) -> Result<Bytes> {
          return keys->EncryptBlock(id, std::move(data));
        });
    store->set_read_transform(
        [keys](storage::BlockId id, Bytes data) -> Result<Bytes> {
          return keys->DecryptBlock(id, std::move(data));
        });
  }
}

Status Warehouse::RotateKeys() {
  if (keys_ == nullptr) {
    return Status::FailedPrecondition("warehouse is not encrypted");
  }
  // Serialized with writers only: the key hierarchy is internally
  // locked, so concurrent SELECTs keep decrypting right through the
  // rewrap. Data and results are untouched — no version bump.
  common::MutexLock statement_lock(writer_mu_);
  return keys_->RotateClusterKey();
}

Status Warehouse::Begin() {
  // writer_mu_ excludes every mutating statement, so the captured
  // manifest is a statement boundary; readers may keep scanning their
  // own pinned snapshots throughout.
  common::MutexLock statement_lock(writer_mu_);
  SDW_RETURN_IF_ERROR(crash_.Down());
  if (in_transaction()) {
    return Status::FailedPrecondition("already in a transaction");
  }
  SDW_ASSIGN_OR_RETURN(txn_manifest_, backup::CaptureManifest(cluster_.get()));
  txn_statements_.clear();
  in_txn_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

Status Warehouse::Commit() {
  common::MutexLock statement_lock(writer_mu_);
  SDW_RETURN_IF_ERROR(crash_.Down());
  if (!in_transaction()) {
    return Status::FailedPrecondition("no open transaction");
  }
  // The transaction's durability point: one atomic kTransaction record
  // for the whole buffered batch. A crash before the append loses the
  // batch entirely (never acked); after it, recovery replays it whole.
  SDW_RETURN_IF_ERROR(CrashPoint(durability::kCrashPreLog));
  if (options_.durability.log_commits &&
      !replaying_.load(std::memory_order_relaxed) &&
      !txn_statements_.empty()) {
    durability::LogRecord record;
    record.kind = durability::LogRecord::Kind::kTransaction;
    record.statements = txn_statements_;
    SDW_ASSIGN_OR_RETURN(uint64_t lsn, commit_log_.Append(std::move(record)));
    applied_lsn_.store(lsn, std::memory_order_relaxed);
  }
  SDW_RETURN_IF_ERROR(CrashPoint(durability::kCrashPostLogPreInstall));
  in_txn_.store(false, std::memory_order_relaxed);
  txn_manifest_ = backup::SnapshotManifest{};
  txn_statements_.clear();
  return CrashPoint(durability::kCrashPreAck);
}

Status Warehouse::Rollback() {
  common::MutexLock statement_lock(writer_mu_);
  SDW_RETURN_IF_ERROR(crash_.Down());
  if (!in_transaction()) {
    return Status::FailedPrecondition("no open transaction");
  }
  {
    common::WriterMutexLock data_lock(data_mu_);
    // Every table may snap back to its captured chains: invalidate all
    // cached plans/results before touching anything.
    BumpAllVersions();
    // Tables created inside the transaction disappear entirely (their
    // blocks linger until no snapshot pins them; DropTable collects).
    std::set<std::string> pre_txn;
    for (const auto& table : txn_manifest_.tables) {
      pre_txn.insert(table.schema.name());
    }
    for (const std::string& name : cluster_->catalog()->TableNames()) {
      if (!pre_txn.count(name)) {
        SDW_RETURN_IF_ERROR(cluster_->DropTable(name));
      }
    }
    // Pre-existing tables snap back to their captured chains, installed
    // as a NEW version on the live shards: blocks are immutable and
    // never deleted mid-transaction, so the old chains are fully
    // intact, and a reader pinned mid-transaction keeps its own
    // version. Blocks appended during the transaction retire with the
    // replaced heads and are collected below once unpinned.
    for (const auto& table : txn_manifest_.tables) {
      const std::string& name = table.schema.name();
      SDW_RETURN_IF_ERROR(
          cluster_->catalog()->UpdateTable(name, table.schema));
      for (const auto& shard : table.shards) {
        SDW_ASSIGN_OR_RETURN(
            std::shared_ptr<storage::TableShard> live,
            cluster_->shard_ref(shard.global_slice, name));
        // Undo analyzer-assigned encodings column by column: a pinned
        // reader may be consulting the shard schema's types
        // concurrently, and those never change.
        for (size_t c = 0; c < table.schema.num_columns(); ++c) {
          live->SetColumnEncoding(c, table.schema.column(c).encoding);
        }
        SDW_RETURN_IF_ERROR(live->InstallChains(shard.chains));
      }
      TableStats stats;
      stats.row_count = table.stats_row_count;
      stats.columns.resize(table.schema.num_columns());
      cluster_->catalog()->UpdateStats(name, stats);
      // EVEN-placement cursors snap back too: the rolled-back inserts
      // must leave no trace, or the next insert's placement (and so
      // replayed history) would diverge from a run that never had the
      // transaction.
      cluster_->set_round_robin_cursor(name, table.round_robin_cursor);
    }
    in_txn_.store(false, std::memory_order_relaxed);
    txn_manifest_ = backup::SnapshotManifest{};
    txn_statements_.clear();
  }
  cluster_->CollectGarbage();
  return Status::OK();
}

Result<StatementResult> Warehouse::Execute(const std::string& sql) {
  return ExecuteAs(sql, 0);
}

Result<StatementResult> Warehouse::ExecuteQuery(
    const plan::LogicalQuery& query) {
  SDW_RETURN_IF_ERROR(crash_.Down());
  return RunSelect(query, /*explain=*/false, /*explain_analyze=*/false,
                   plan::CanonicalText(query), /*session_id=*/0,
                   /*user_group=*/"");
}

Result<StatementResult> Warehouse::ExecuteAs(const std::string& sql,
                                             int session_id,
                                             const std::string& user_group) {
  // A crashed warehouse is a dead process: every entry point fails
  // until Recover() brings up "the new one". While recovery replays
  // the log it owns the front door exclusively.
  SDW_RETURN_IF_ERROR(crash_.Down());
  if (recovering_.load(std::memory_order_acquire) &&
      !replaying_.load(std::memory_order_relaxed)) {
    return Status::Unavailable("warehouse is recovering");
  }
  SDW_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  if (auto* select = std::get_if<sql::SelectStmt>(&stmt)) {
    if (IsSystemTable(select->query.from_table)) {
      // System-table queries run on the leader against the logs/registry
      // and are not themselves recorded in stl_query (monitoring should
      // not pollute what it monitors). They also bypass admission — the
      // operator must be able to read stl_wlm while the queue is full.
      if (select->explain) {
        return Status::NotSupported(
            "EXPLAIN is not supported on system tables");
      }
      // Pin the data plane with a short shared hold, then execute off
      // the lock — every source is internally synchronized.
      std::shared_ptr<cluster::Cluster> pinned_cluster;
      {
        common::ReaderMutexLock data_lock(data_mu_);
        pinned_cluster = cluster_;
      }
      SystemTableSources sources;
      sources.query_log = &query_log_;
      sources.event_log = &event_log_;
      sources.cluster = pinned_cluster.get();
      sources.wlm = &admission_;
      sources.segment_cache = &segment_cache_;
      sources.result_cache = &result_cache_;
      sources.scan_log = &scan_log_;
      sources.inflight = &inflight_;
      sources.gauges = &gauges_;
      sources.alerts = &alerts_;
      {
        common::MutexLock versions_lock(cache_mu_);
        sources.table_versions = table_versions_;
      }
      SDW_ASSIGN_OR_RETURN(SystemQueryResult sys,
                           ExecuteSystemQuery(select->query, sources));
      StatementResult result;
      result.rows = std::move(sys.rows);
      result.column_names = std::move(sys.column_names);
      result.message = std::to_string(result.rows.num_rows()) + " rows";
      return result;
    }
    return RunSelect(select->query, select->explain, select->explain_analyze,
                     sql, session_id, user_group);
  }
  return RunStatement(std::move(stmt), sql, session_id, user_group);
}

double Warehouse::EstimateSelectSeconds(
    const std::vector<std::string>& tables) {
  if (!admission_.config().enable_sqa) return -1;
  std::shared_ptr<cluster::Cluster> pinned_cluster;
  {
    common::ReaderMutexLock data_lock(data_mu_);
    pinned_cluster = cluster_;
  }
  uint64_t bytes = 0;
  for (const std::string& table : tables) {
    const TableStats stats = pinned_cluster->catalog()->GetStats(table);
    if (stats.total_bytes == 0 && stats.row_count == 0) {
      // Never analyzed: no basis for a short-query promise.
      return -1;
    }
    // ANALYZE fills total_bytes; a stats row from INSERT bookkeeping
    // may only carry row_count — assume narrow rows rather than refuse.
    bytes += stats.total_bytes > 0 ? stats.total_bytes : stats.row_count * 8;
  }
  return options_.cost_model.ScanEstimateSeconds(
      bytes, pinned_cluster->total_slices());
}

Result<StatementResult> Warehouse::RunSelect(const plan::LogicalQuery& query,
                                             bool explain,
                                             bool explain_analyze,
                                             const std::string& sql_text,
                                             int session_id,
                                             const std::string& user_group) {
  StatementResult result;
  if (explain && !explain_analyze) {
    // Plain EXPLAIN plans but does not run, occupy a slot, or touch the
    // caches. Pin the data plane briefly; planning runs off the lock
    // against the internally locked catalog.
    std::shared_ptr<cluster::Cluster> pinned_cluster;
    {
      common::ReaderMutexLock data_lock(data_mu_);
      pinned_cluster = cluster_;
    }
    plan::Planner planner(pinned_cluster->catalog(), options_.planner);
    SDW_ASSIGN_OR_RETURN(plan::PhysicalQuery physical, planner.Plan(query));
    result.message = physical.ToString();
    return result;
  }

  const std::string canonical = plan::CanonicalText(query);
  const uint64_t fingerprint = Hash64(std::string_view(canonical));
  std::vector<std::string> tables{query.from_table};
  if (query.join_table.has_value()) tables.push_back(*query.join_table);

  // Result-cache fast path: a repeat query over unchanged tables is
  // answered from memory without occupying a WLM slot. The short
  // shared hold pins the version snapshot for the lookup — a writer
  // bumps versions and installs under the exclusive mode, so a hit
  // here can never reflect pre-write data after the write.
  if (options_.cache.enable_result_cache && !explain_analyze) {
    std::shared_ptr<const CachedResult> hit;
    {
      common::ReaderMutexLock data_lock(data_mu_);
      const TableVersions versions = SnapshotVersions(tables);
      hit = result_cache_.Lookup(fingerprint, canonical, versions);
    }
    if (hit != nullptr) {
      obs::QueryLog::Started started = query_log_.StartQuery();
      obs::QueryRecord record;
      record.query_id = started.query_id;
      record.sql_text = sql_text;
      record.start_tick = started.start_tick;
      record.status = "success";
      record.result_rows = hit->rows.num_rows();
      record.counters.rows_out = record.result_rows;
      query_log_.FinishQuery(std::move(record));
      cluster::AdmissionController::Report report;
      report.session_id = session_id;
      report.state = "result_cache";
      report.queue = "none";  // served from memory, no slot occupied
      report.statement = sql_text;
      admission_.Record(std::move(report));
      result.rows = CloneBatch(hit->rows);
      result.column_names = hit->column_names;
      result.message = std::to_string(result.rows.num_rows()) + " rows";
      result.from_result_cache = true;
      return result;
    }
  }

  // A miss on a fingerprint this warehouse has executed before is the
  // result-cache-repeat-miss alert's trigger (the hit path returned
  // above). First sight of a statement just records it.
  bool repeat_cache_miss = false;
  if (options_.workload_intelligence && options_.cache.enable_result_cache &&
      !explain_analyze) {
    common::MutexLock cache_lock(cache_mu_);
    repeat_cache_miss = !seen_fingerprints_.insert(fingerprint).second;
  }

  // Register with stv_inflight before joining the admission queue so a
  // queued statement is visible (phase "queued") while it waits.
  obs::InflightRegistry::Ticket ticket;
  if (options_.workload_intelligence) {
    ticket = inflight_.Register(session_id, sql_text);
  }

  cluster::AdmitRequest admit_request;
  admit_request.session_id = session_id;
  admit_request.user_group = user_group;
  admit_request.query_class = "select";
  admit_request.estimated_seconds = EstimateSelectSeconds(tables);
  admit_request.statement = sql_text;
  SDW_ASSIGN_OR_RETURN(cluster::AdmissionController::Slot slot,
                       AdmitOrReport(&admission_, admit_request));
  WlmReportScope report(&admission_, session_id, sql_text, slot);
  if (ticket) {
    ticket.progress()->set_queued_seconds(slot.queued_seconds());
    ticket.progress()->set_phase(obs::QueryPhase::kPlan);
  }
  sim::Stopwatch exec_timer;
  // Pin the MVCC snapshot AFTER admission: a write may have committed
  // while this statement sat in the WLM queue, and the cache entries
  // inserted below must be keyed by the versions the scans actually
  // read — versions and chains are captured as one coherent triple.
  // Execution itself holds no warehouse lock at all; concurrent
  // COPY/VACUUM install new chains alongside the pinned ones.
  SDW_ASSIGN_OR_RETURN(PinnedSnapshot pin, PinSnapshot(tables));

  std::shared_ptr<const plan::PhysicalQuery> physical;
  bool segment_hit = false;
  if (options_.cache.enable_segment_cache) {
    physical = segment_cache_.Lookup(fingerprint, canonical, pin.versions);
    segment_hit = physical != nullptr;
  }
  if (physical == nullptr) {
    plan::Planner planner(pin.cluster->catalog(), options_.planner);
    SDW_ASSIGN_OR_RETURN(plan::PhysicalQuery planned, planner.Plan(query));
    auto owned =
        std::make_shared<const plan::PhysicalQuery>(std::move(planned));
    if (options_.cache.enable_segment_cache) {
      segment_cache_.Insert(fingerprint, canonical, pin.versions, owned);
    }
    physical = std::move(owned);
  }

  obs::QueryLog::Started started = query_log_.StartQuery();
  obs::QueryRecord record;
  record.query_id = started.query_id;
  record.sql_text = sql_text;
  record.start_tick = started.start_tick;
  record.snapshot = FormatVersions(pin.versions);
  record.queue_seconds = slot.queued_seconds();
  cluster::ExecOptions exec_options = options_.exec;
  exec_options.segment_cache_hit = segment_hit;
  exec_options.snapshot = pin.snapshot;
  exec_options.scan_telemetry = options_.workload_intelligence;
  exec_options.progress = ticket ? ticket.progress() : nullptr;
  cluster::QueryExecutor executor(pin.cluster.get(), exec_options);
  Result<cluster::QueryResult> executed = executor.Execute(*physical);
  if (!executed.ok()) {
    record.status = "error";
    record.exec_seconds = exec_timer.Seconds();
    query_log_.FinishQuery(std::move(record));
    return executed.status();
  }
  cluster::QueryResult query_result = std::move(executed).ValueOrDie();
  record.status = "success";
  record.result_rows = query_result.stats.result_rows;
  record.counters.rows_out = query_result.stats.result_rows;
  record.counters.blocks_decoded = query_result.stats.blocks_decoded;
  record.counters.bytes_shuffled = query_result.stats.network_bytes;
  record.counters.masked_reads = query_result.stats.masked_reads;
  record.counters.s3_fault_reads = query_result.stats.s3_fault_reads;
  if (query_result.trace != nullptr &&
      query_result.trace->root() != nullptr) {
    // The admission wait precedes everything the executor recorded:
    // stage -1 lays out before compile/pipelines. One deterministic
    // tick — the real queue time is wall clock and belongs to stl_wlm,
    // never to the virtual timeline.
    query_result.trace->AddSpan("wlm admit",
                                query_result.trace->root()->span_id,
                                /*stage=*/-1);
  }
  record.trace = query_result.trace;
  record.exec_seconds = exec_timer.Seconds();
  const double queue_seconds = record.queue_seconds;
  const double exec_seconds = record.exec_seconds;
  // FinishQuery assigns the trace's virtual timestamps, so the EXPLAIN
  // ANALYZE rendering below sees final ticks.
  const uint64_t end_tick = query_log_.FinishQuery(std::move(record));
  report.set_state("run");

  // Workload intelligence at query finish: log the per-scan telemetry
  // (stl_scan + block heat) and evaluate the performance-alert rules
  // over it. Alert ticks are the query's end tick, so serial and
  // pooled runs log byte-identical alert histories.
  std::vector<obs::AlertEvent> fired;
  if (options_.workload_intelligence) {
    std::vector<obs::ScanRecord> scans;
    scans.reserve(query_result.stats.scans.size());
    for (const cluster::ScanProfile& profile : query_result.stats.scans) {
      obs::ScanRecord scan;
      scan.query_id = started.query_id;
      scan.table = profile.table;
      scan.site = profile.site;
      scan.predicates = profile.predicates;
      scan.rows_scanned = profile.rows_scanned;
      scan.rows_out = profile.rows_out;
      scan.blocks_read = profile.blocks_read;
      scan.blocks_skipped = profile.blocks_skipped;
      scan.bytes_decoded = profile.bytes_decoded;
      scans.push_back(std::move(scan));
    }
    obs::QueryAlertInputs inputs;
    inputs.query_id = started.query_id;
    inputs.tick = end_tick;
    inputs.scans = scans;
    inputs.masked_reads = query_result.stats.masked_reads;
    inputs.queue_seconds = queue_seconds;
    inputs.exec_seconds = exec_seconds;
    inputs.repeat_cache_miss = repeat_cache_miss;
    fired = obs::EvaluateQueryAlerts(inputs);
    alerts_.Record(fired);
    scan_log_.Append(std::move(scans));
  }

  if (explain_analyze) {
    result.exec_stats = query_result.stats;
    result.message = RenderExplainAnalyze(*physical, query_result, fired);
    return result;
  }
  if (options_.cache.enable_result_cache) {
    auto cached = std::make_shared<CachedResult>();
    cached->rows = CloneBatch(query_result.rows);
    cached->column_names = query_result.column_names;
    result_cache_.Insert(fingerprint, canonical, pin.versions,
                         std::move(cached));
  }
  result.rows = std::move(query_result.rows);
  result.column_names = std::move(query_result.column_names);
  result.exec_stats = query_result.stats;
  result.message = std::to_string(result.rows.num_rows()) + " rows";
  return result;
}

Result<StatementResult> Warehouse::RunStatement(sql::Statement stmt,
                                                const std::string& sql,
                                                int session_id,
                                                const std::string& user_group) {
  StatementResult result;
  if (auto* txn = std::get_if<sql::TxnStmt>(&stmt)) {
    // Transaction control is leader metadata work: no slot, no queue.
    switch (txn->kind) {
      case sql::TxnStmt::Kind::kBegin:
        SDW_RETURN_IF_ERROR(Begin());
        result.message = "BEGIN";
        break;
      case sql::TxnStmt::Kind::kCommit:
        SDW_RETURN_IF_ERROR(Commit());
        result.message = "COMMIT";
        break;
      case sql::TxnStmt::Kind::kRollback:
        SDW_RETURN_IF_ERROR(Rollback());
        result.message = "ROLLBACK";
        break;
    }
    return result;
  }
  if (in_transaction() && (std::holds_alternative<sql::DropTableStmt>(stmt) ||
                           std::holds_alternative<sql::VacuumStmt>(stmt))) {
    return Status::NotSupported(
        "DROP TABLE / VACUUM reclaim blocks eagerly and cannot run inside "
        "a transaction");
  }

  // Writes go through the same front door as queries, then serialize
  // on writer_mu_ for the whole statement. The heavy work (fetch,
  // parse, distribute, sort, encode) runs on staged chains with no
  // data lock held — concurrent SELECTs read their pinned snapshots
  // undisturbed. Only the final bump + install takes data_mu_
  // exclusively, and versions bump BEFORE the install inside that same
  // hold: a statement that fails halfway has still invalidated
  // everything it might have touched, and a reader pinning between
  // statements always sees versions and chains move together.
  // Writes are visible in stv_inflight too — a long COPY is exactly
  // what an operator polls for from another session.
  obs::InflightRegistry::Ticket ticket;
  if (options_.workload_intelligence) {
    ticket = inflight_.Register(session_id, sql);
  }
  cluster::AdmitRequest admit_request;
  admit_request.session_id = session_id;
  admit_request.user_group = user_group;
  if (std::holds_alternative<sql::CopyStmt>(stmt)) {
    admit_request.query_class = "copy";
  } else if (std::holds_alternative<sql::InsertStmt>(stmt)) {
    admit_request.query_class = "insert";
  } else if (std::holds_alternative<sql::VacuumStmt>(stmt)) {
    admit_request.query_class = "vacuum";
  } else {
    admit_request.query_class = "ddl";
  }
  admit_request.statement = sql;
  SDW_ASSIGN_OR_RETURN(cluster::AdmissionController::Slot slot,
                       AdmitOrReport(&admission_, admit_request));
  WlmReportScope report(&admission_, session_id, sql, slot);
  if (ticket) {
    ticket.progress()->set_queued_seconds(slot.queued_seconds());
    ticket.progress()->set_phase(obs::QueryPhase::kExec);
  }
  common::MutexLock statement_lock(writer_mu_);

  if (auto* create = std::get_if<sql::CreateTableStmt>(&stmt)) {
    // Validate before logging: only statements that will apply (and so
    // will replay cleanly) may enter the commit log.
    if (cluster_->catalog()->GetTable(create->schema.name()).ok()) {
      return Status::AlreadyExists("table '" + create->schema.name() +
                                   "' exists");
    }
    SDW_RETURN_IF_ERROR(LogBeforeInstall(sql, session_id));
    {
      common::WriterMutexLock data_lock(data_mu_);
      BumpVersions({create->schema.name()});
      SDW_RETURN_IF_ERROR(cluster_->CreateTable(create->schema));
    }
    SDW_RETURN_IF_ERROR(CrashPoint(durability::kCrashPreAck));
    result.message = "CREATE TABLE " + create->schema.name();
    report.set_state("run");
    return result;
  }
  if (auto* drop = std::get_if<sql::DropTableStmt>(&stmt)) {
    SDW_RETURN_IF_ERROR(
        cluster_->catalog()->GetTable(drop->table).status());
    SDW_RETURN_IF_ERROR(LogBeforeInstall(sql, session_id));
    {
      common::WriterMutexLock data_lock(data_mu_);
      BumpVersions({drop->table});
      // Unlinks the table; its shards park on the dropped list until
      // every pinned snapshot drains (mid-scan readers finish cleanly).
      SDW_RETURN_IF_ERROR(cluster_->DropTable(drop->table));
    }
    SDW_RETURN_IF_ERROR(CrashPoint(durability::kCrashPreAck));
    result.message = "DROP TABLE " + drop->table;
    report.set_state("run");
    return result;
  }
  if (auto* copy = std::get_if<sql::CopyStmt>(&stmt)) {
    // Conservative invalidation up front: a COPY that aborts mid-load
    // (S3 outage) must still have invalidated everything it might have
    // touched. The commit below bumps again so entries cached against
    // mid-load pins can never serve post-commit.
    {
      common::WriterMutexLock data_lock(data_mu_);
      BumpVersions({copy->table});
    }
    cluster::StagedWrite staged(cluster_.get());
    load::CopyExecutor executor(cluster_.get(), s3_, options_.region);
    load::CopyOptions copy_options;
    copy_options.format = copy->format == sql::CopyStmt::Format::kCsv
                              ? load::CopyFormat::kCsv
                              : load::CopyFormat::kJson;
    copy_options.compupdate = copy->compupdate;
    // Stage every file's run off to the side; stats run post-commit on
    // the installed data instead of mid-load.
    copy_options.staging = &staged;
    copy_options.statupdate = false;
    copy_options.progress = ticket ? ticket.progress() : nullptr;
    SDW_ASSIGN_OR_RETURN(result.copy_stats,
                         executor.CopyFromUri(copy->table, copy->source_uri,
                                              copy_options));
    // Log-before-install: staging (the fallible part) is done, so the
    // logged statement is guaranteed to re-apply on replay.
    SDW_RETURN_IF_ERROR(LogBeforeInstall(sql, session_id));
    {
      common::WriterMutexLock data_lock(data_mu_);
      BumpVersions({copy->table});
      // The multi-block, multi-file load becomes visible as ONE version
      // bump per shard: a snapshot sees the whole COPY or none of it.
      SDW_RETURN_IF_ERROR(cluster_->CommitStaged(&staged, MidInstallBarrier()));
    }
    if (result.copy_stats.rows_loaded > 0) {
      SDW_RETURN_IF_ERROR(cluster_->Analyze(copy->table));
      // Fresh stats change plans; cached segments must re-lower.
      BumpVersions({copy->table});
    }
    SDW_RETURN_IF_ERROR(CrashPoint(durability::kCrashPreAck));
    result.message = "COPY " + std::to_string(result.copy_stats.rows_loaded) +
                     " rows into " + copy->table;
    report.set_state("run");
    return result;
  }
  if (auto* insert = std::get_if<sql::InsertStmt>(&stmt)) {
    SDW_ASSIGN_OR_RETURN(TableSchema schema,
                         cluster_->catalog()->GetTable(insert->table));
    std::vector<ColumnVector> columns;
    for (const ColumnDef& col : schema.columns()) {
      columns.emplace_back(col.type);
    }
    for (const Row& row : insert->rows) {
      if (row.size() != schema.num_columns()) {
        return Status::InvalidArgument("INSERT arity mismatch");
      }
      for (size_t c = 0; c < row.size(); ++c) {
        SDW_RETURN_IF_ERROR(columns[c].AppendDatum(row[c]));
      }
    }
    {
      // Conservative up-front invalidation, same contract as COPY.
      common::WriterMutexLock data_lock(data_mu_);
      BumpVersions({insert->table});
    }
    cluster::StagedWrite staged(cluster_.get());
    SDW_RETURN_IF_ERROR(
        cluster_->InsertRows(insert->table, columns, &staged));
    SDW_RETURN_IF_ERROR(LogBeforeInstall(sql, session_id));
    {
      common::WriterMutexLock data_lock(data_mu_);
      BumpVersions({insert->table});
      SDW_RETURN_IF_ERROR(cluster_->CommitStaged(&staged, MidInstallBarrier()));
    }
    SDW_RETURN_IF_ERROR(CrashPoint(durability::kCrashPreAck));
    result.message =
        "INSERT " + std::to_string(insert->rows.size()) + " rows";
    report.set_state("run");
    return result;
  }
  if (auto* analyze = std::get_if<sql::AnalyzeStmt>(&stmt)) {
    SDW_RETURN_IF_ERROR(
        cluster_->catalog()->GetTable(analyze->table).status());
    SDW_RETURN_IF_ERROR(LogBeforeInstall(sql, session_id));
    // Fresh stats change plans, so cached segments must re-lower.
    // Stats live in the internally locked catalog and never change
    // results, so no data_mu_ hold is needed around the scan.
    BumpVersions({analyze->table});
    SDW_RETURN_IF_ERROR(cluster_->Analyze(analyze->table));
    SDW_RETURN_IF_ERROR(CrashPoint(durability::kCrashPreAck));
    result.message = "ANALYZE " + analyze->table;
    report.set_state("run");
    return result;
  }
  auto& vacuum = std::get<sql::VacuumStmt>(stmt);
  // Each COPY sorts its own run; VACUUM merges the accumulated runs
  // back into one fully-sorted region per slice. The merge-sort and
  // re-encode happen on staged chains — readers scan the old ones —
  // and the swap is one version bump. Old chains retire and are
  // reclaimed once no snapshot pins them.
  {
    // Conservative up-front invalidation, same contract as COPY.
    common::WriterMutexLock data_lock(data_mu_);
    BumpVersions({vacuum.table});
  }
  cluster::StagedWrite staged(cluster_.get());
  SDW_ASSIGN_OR_RETURN(uint64_t blocks,
                       cluster_->Vacuum(vacuum.table, &staged));
  SDW_RETURN_IF_ERROR(LogBeforeInstall(sql, session_id));
  {
    common::WriterMutexLock data_lock(data_mu_);
    BumpVersions({vacuum.table});
    SDW_RETURN_IF_ERROR(cluster_->CommitStaged(&staged, MidInstallBarrier()));
  }
  cluster_->CollectGarbage();
  SDW_RETURN_IF_ERROR(CrashPoint(durability::kCrashPreAck));
  result.message = "VACUUM " + vacuum.table + " (" + std::to_string(blocks) +
                   " blocks rewritten)";
  report.set_state("run");
  return result;
}

Result<backup::BackupManager::BackupStats> Warehouse::Backup(
    bool user_initiated) {
  // A backup is a consistent read of every chain: serialize it with
  // writers on writer_mu_ (no statement commits mid-capture) while
  // SELECTs keep running — it reads published heads, changes nothing.
  common::MutexLock statement_lock(writer_mu_);
  SDW_RETURN_IF_ERROR(crash_.Down());
  uint64_t watermark = 0;
  if (options_.durability.log_commits) {
    // Under writer_mu_ no commit can land mid-capture, so everything
    // at or below LastLsn() is contained in this snapshot.
    SDW_ASSIGN_OR_RETURN(watermark, commit_log_.LastLsn());
  }
  SDW_ASSIGN_OR_RETURN(backup::BackupManager::BackupStats stats,
                       backups_.Backup(cluster_.get(), user_initiated,
                                       watermark));
  if (options_.durability.log_commits) {
    // The fresh snapshot becomes the recovery base; the log keeps only
    // what some remaining snapshot has not absorbed (an older snapshot
    // with a lower — or zero — watermark pins the tail it still needs).
    SDW_RETURN_IF_ERROR(commit_log_.SetRecoveryBase(stats.snapshot_id));
    SDW_ASSIGN_OR_RETURN(uint64_t keep_after, backups_.MinimumWatermark());
    if (keep_after > 0) {
      SDW_RETURN_IF_ERROR(commit_log_.TruncateThrough(keep_after));
    }
  }
  return stats;
}

Status Warehouse::RestoreInPlace(uint64_t snapshot_id,
                                 backup::BackupManager::RestoreStats* stats) {
  common::MutexLock statement_lock(writer_mu_);
  SDW_RETURN_IF_ERROR(crash_.Down());
  if (in_transaction()) {
    return Status::FailedPrecondition("cannot restore inside a transaction");
  }
  // Materialize the restored cluster entirely off the data lock:
  // queries keep answering from the current plane while blocks stream.
  SDW_ASSIGN_OR_RETURN(std::unique_ptr<cluster::Cluster> restored,
                       backups_.StreamingRestore(snapshot_id, stats));
  // A restore rewinds visible state but must not rewind durable
  // history: it is itself a logged commit (kRestore), so acknowledged
  // statements before it stay acknowledged — recovery re-reaches this
  // exact state by replaying them and then the restore.
  SDW_RETURN_IF_ERROR(CrashPoint(durability::kCrashPreLog));
  if (options_.durability.log_commits &&
      !replaying_.load(std::memory_order_relaxed)) {
    durability::LogRecord record;
    record.kind = durability::LogRecord::Kind::kRestore;
    record.restore_snapshot_id = snapshot_id;
    SDW_ASSIGN_OR_RETURN(uint64_t lsn, commit_log_.Append(std::move(record)));
    applied_lsn_.store(lsn, std::memory_order_relaxed);
  }
  SDW_RETURN_IF_ERROR(CrashPoint(durability::kCrashPostLogPreInstall));
  // Page-faulted blocks arrive as stored (encrypted) bytes; reads must
  // unwrap them from the very first query — wire before the swap.
  WireEncryptionOn(restored.get());
  {
    common::WriterMutexLock data_lock(data_mu_);
    // The whole data plane swaps: nothing cached may survive. Bump on
    // both sides of the swap so tables that exist only in the old
    // plane AND tables that arrive with the snapshot are invalidated
    // (BumpAllVersions folds in the current catalog's names).
    BumpAllVersions();
    cluster_ = std::move(restored);
    BumpAllVersions();
  }
  // In-flight SELECTs pinned the old cluster's shared_ptr and finish
  // on it; it is freed when the last of them drains.
  SyncHostManagers();
  return CrashPoint(durability::kCrashPreAck);
}

Result<cluster::Cluster::ResizeStats> Warehouse::Resize(int new_num_nodes) {
  common::MutexLock statement_lock(writer_mu_);
  SDW_RETURN_IF_ERROR(crash_.Down());
  if (in_transaction()) {
    return Status::FailedPrecondition("cannot resize inside a transaction");
  }
  cluster::Cluster::ResizeStats stats;
  // The parallel copy runs off the data lock — the source serves reads
  // throughout (it flips read-only, and writer_mu_ already excludes
  // writers). The target must encrypt blocks as the copy lands, so its
  // stores get the at-rest transforms before any data moves.
  SDW_ASSIGN_OR_RETURN(
      std::unique_ptr<cluster::Cluster> target,
      cluster_->Resize(new_num_nodes, &stats,
                       [this](cluster::Cluster* fresh) {
                         WireEncryptionOn(fresh);
                       }));
  // Topology is part of durable state (placement depends on it), so a
  // resize is a logged commit: the heavy copy above is re-doable, the
  // swap below is what the kResize record makes durable.
  SDW_RETURN_IF_ERROR(CrashPoint(durability::kCrashPreLog));
  if (options_.durability.log_commits &&
      !replaying_.load(std::memory_order_relaxed)) {
    durability::LogRecord record;
    record.kind = durability::LogRecord::Kind::kResize;
    record.resize_nodes = new_num_nodes;
    SDW_ASSIGN_OR_RETURN(uint64_t lsn, commit_log_.Append(std::move(record)));
    applied_lsn_.store(lsn, std::memory_order_relaxed);
  }
  SDW_RETURN_IF_ERROR(CrashPoint(durability::kCrashPostLogPreInstall));
  {
    common::WriterMutexLock data_lock(data_mu_);
    // Same rows on a different topology: results survive semantically
    // but cached plans are topology-bound, so everything re-derives.
    BumpAllVersions();
    // Move the SQL endpoint and decommission the source (§3.1).
    cluster_ = std::move(target);
    BumpAllVersions();
  }
  SyncHostManagers();
  SDW_RETURN_IF_ERROR(CrashPoint(durability::kCrashPreAck));
  return stats;
}

Status Warehouse::ApplyLogRecord(const durability::LogRecord& record,
                                 RecoverStats* stats) {
  switch (record.kind) {
    case durability::LogRecord::Kind::kStatement:
    case durability::LogRecord::Kind::kTransaction:
      // A kTransaction batch replays as bare statements: its effects
      // were already atomic in the original run (one log record), and
      // replay is single-threaded, so no interleaving can observe the
      // intermediate states.
      for (const std::string& text : record.statements) {
        SDW_RETURN_IF_ERROR(ExecuteAs(text, record.session_id).status());
        ++stats->replayed_statements;
      }
      return Status::OK();
    case durability::LogRecord::Kind::kResize:
      ++stats->replayed_statements;
      return Resize(record.resize_nodes).status();
    case durability::LogRecord::Kind::kRestore:
      ++stats->replayed_statements;
      return RestoreInPlace(record.restore_snapshot_id);
  }
  return Status::Corruption("unknown log record kind");
}

Status Warehouse::RecoverInternal(RecoverStats* stats) {
  uint64_t after = 0;
  {
    common::MutexLock statement_lock(writer_mu_);
    // The crashed process's open transaction (if any) died with it.
    in_txn_.store(false, std::memory_order_relaxed);
    txn_manifest_ = backup::SnapshotManifest{};
    txn_statements_.clear();
    SDW_ASSIGN_OR_RETURN(uint64_t base, commit_log_.GetRecoveryBase());
    std::shared_ptr<cluster::Cluster> restored;
    if (base != 0) {
      SDW_ASSIGN_OR_RETURN(backup::SnapshotManifest manifest,
                           backups_.GetManifest(base));
      after = manifest.durable_lsn;
      SDW_ASSIGN_OR_RETURN(std::unique_ptr<cluster::Cluster> from_snapshot,
                           backups_.StreamingRestore(base, &stats->restore));
      restored = std::move(from_snapshot);
      stats->base_snapshot_id = base;
    } else {
      // Never backed up: start empty and replay the whole log.
      restored = std::make_shared<cluster::Cluster>(options_.cluster);
    }
    WireEncryptionOn(restored.get());
    {
      common::WriterMutexLock data_lock(data_mu_);
      // Both sides of the swap invalidate: no cache entry computed
      // from pre-crash state may ever serve against recovered data.
      BumpAllVersions();
      cluster_ = std::move(restored);
      BumpAllVersions();
    }
    SyncHostManagers();
    applied_lsn_.store(after, std::memory_order_relaxed);
  }
  // Replay runs off writer_mu_: every record re-enters the normal
  // front door (which takes writer_mu_ per statement), so replayed
  // history takes exactly the code path the original commits took.
  replaying_.store(true, std::memory_order_release);
  SDW_ASSIGN_OR_RETURN(durability::CommitLog::Tail tail,
                       commit_log_.ReadTail(after));
  for (const durability::LogRecord& record : tail.records) {
    // LSN guard: anything the base snapshot already contains is
    // skipped, so recovery is idempotent (a crash during recovery
    // just recovers again).
    if (record.lsn <= applied_lsn_.load(std::memory_order_relaxed)) continue;
    SDW_RETURN_IF_ERROR(ApplyLogRecord(record, stats));
    applied_lsn_.store(record.lsn, std::memory_order_relaxed);
    ++stats->replayed_records;
  }
  if (tail.torn_lsn != 0) {
    // The torn record was mid-append when the process died — by
    // log-before-install it was never acknowledged, so dropping it is
    // the correct (and only consistent) choice.
    SDW_RETURN_IF_ERROR(commit_log_.TruncateFrom(tail.torn_lsn));
    stats->torn_lsn = tail.torn_lsn;
  }
  return Status::OK();
}

Result<Warehouse::RecoverStats> Warehouse::Recover() {
  static obs::Counter* recoveries =
      obs::Registry::Global().counter("sdw_durability_recoveries");
  static obs::Counter* replayed =
      obs::Registry::Global().counter("sdw_durability_replayed_records");
  // Recovery IS the new process: whatever crash poisoned the old one
  // is history.
  crash_.Reset();
  recovering_.store(true, std::memory_order_release);
  RecoverStats stats;
  Status status = RecoverInternal(&stats);
  replaying_.store(false, std::memory_order_release);
  recovering_.store(false, std::memory_order_release);
  SDW_RETURN_IF_ERROR(status);
  recoveries->Add();
  replayed->Add(stats.replayed_records);
  event_log_.Record(
      "durability", "recover", -1,
      static_cast<double>(stats.replayed_records),
      "recovered from snapshot " + std::to_string(stats.base_snapshot_id) +
          ", replayed " + std::to_string(stats.replayed_records) +
          " log records (" + std::to_string(stats.replayed_statements) +
          " statements)" +
          (stats.torn_lsn != 0
               ? ", truncated torn tail at lsn " +
                     std::to_string(stats.torn_lsn)
               : ""));
  return stats;
}

}  // namespace sdw::warehouse
