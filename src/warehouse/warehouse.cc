#include "warehouse/warehouse.h"

#include <algorithm>
#include <set>

#include "common/hash.h"
#include "common/logging.h"
#include "warehouse/system_tables.h"

namespace sdw::warehouse {

namespace {

/// Renders one datum for the text table.
std::string Cell(const Datum& value) {
  if (value.is_null()) return "NULL";
  if (value.type() == TypeId::kString) return value.string_value();
  return value.ToString();
}

}  // namespace

std::string StatementResult::ToTable(size_t max_rows) const {
  const size_t ncols = rows.num_columns();
  if (ncols == 0) return message + "\n";
  const size_t nrows = std::min<size_t>(rows.num_rows(), max_rows);
  std::vector<std::vector<std::string>> cells(nrows + 1);
  std::vector<size_t> widths(ncols, 0);
  for (size_t c = 0; c < ncols; ++c) {
    std::string name =
        c < column_names.size() ? column_names[c] : "col" + std::to_string(c);
    widths[c] = name.size();
    cells[0].push_back(std::move(name));
  }
  for (size_t r = 0; r < nrows; ++r) {
    for (size_t c = 0; c < ncols; ++c) {
      std::string cell = Cell(rows.columns[c].DatumAt(r));
      widths[c] = std::max(widths[c], cell.size());
      cells[r + 1].push_back(std::move(cell));
    }
  }
  std::string out;
  for (size_t r = 0; r < cells.size(); ++r) {
    for (size_t c = 0; c < ncols; ++c) {
      out += cells[r][c];
      out.append(widths[c] - cells[r][c].size() + 2, ' ');
    }
    out += "\n";
    if (r == 0) {
      for (size_t c = 0; c < ncols; ++c) {
        out.append(widths[c], '-');
        out.append(2, ' ');
      }
      out += "\n";
    }
  }
  if (rows.num_rows() > nrows) {
    out += "... (" + std::to_string(rows.num_rows()) + " rows total)\n";
  } else {
    out += "(" + std::to_string(rows.num_rows()) + " rows)\n";
  }
  return out;
}

Warehouse::Warehouse(WarehouseOptions options)
    : options_(options),
      cluster_(std::make_unique<cluster::Cluster>(options.cluster)),
      backups_(&s3_, options.region, options.cluster_id) {
  if (options_.encrypted) {
    master_provider_ = std::make_unique<security::ServiceKeyProvider>(
        Hash64(std::string_view(options_.cluster_id)));
    auto hierarchy = security::KeyHierarchy::Create(master_provider_.get());
    SDW_CHECK(hierarchy.ok()) << hierarchy.status();
    keys_ = std::make_unique<security::KeyHierarchy>(
        std::move(hierarchy).ValueOrDie());
    WireEncryption();
  }
  control_plane_.set_event_log(&event_log_);
  SyncHostManagers();
}

void Warehouse::SyncHostManagers() {
  host_managers_.clear();
  for (int n = 0; n < cluster_->num_nodes(); ++n) {
    host_managers_.emplace_back(options_.host_manager);
  }
}

Result<HealthStats> Warehouse::RunHealthSweep() {
  replication::ReplicationManager* repl = cluster_->replication();
  if (repl == nullptr) {
    return Status::FailedPrecondition(
        "health sweep requires a replicated cluster (set "
        "ClusterConfig::replicate with >= 2 nodes)");
  }
  HealthStats stats;
  std::vector<int> to_replace;
  for (int n = 0; n < cluster_->num_nodes(); ++n) {
    const bool dead = repl->IsNodeFailed(n);
    const bool flaky =
        cluster_->node_read_failures(n) >=
        static_cast<uint64_t>(options_.health_read_failure_threshold);
    if (!dead && !flaky) {
      host_managers_[n].OnHeartbeat();
      continue;
    }
    ++stats.unhealthy_nodes;
    if (dead) {
      // No process left to restart: straight to replacement.
      to_replace.push_back(n);
      continue;
    }
    // Repeated masked read failures look like a crashing/sick process:
    // the host manager restarts it locally until its budget runs out.
    if (host_managers_[n].OnProcessCrash()) {
      ++stats.restarts;
      event_log_.Record("host_manager", "restart", n,
                        static_cast<double>(cluster_->node_read_failures(n)),
                        "process restart after repeated masked read failures");
      cluster_->ResetNodeReadFailures(n);
    } else {
      SDW_LOG(Warning) << "node " << n
                       << " exceeded its restart budget; escalating to "
                          "control-plane replacement";
      event_log_.Record("host_manager", "escalate", n, 0,
                        "restart budget exhausted");
      repl->FailNode(n);
      to_replace.push_back(n);
    }
  }

  // Heal what can be healed before (and regardless of) replacements:
  // every under-replicated block with a healthy peer gets its second
  // copy back.
  SDW_ASSIGN_OR_RETURN(int rereplicated, repl->ReReplicate());
  stats.blocks_rereplicated = static_cast<uint64_t>(rereplicated);
  if (rereplicated > 0) {
    event_log_.Record("sweep", "rereplicate", -1,
                      static_cast<double>(rereplicated),
                      "blocks copied back to two-copy");
  }

  for (int n : to_replace) {
    controlplane::OpResult op = control_plane_.ReplaceNode();
    ++stats.escalations;
    stats.control_plane_seconds += op.seconds;
    // The replacement node comes up empty but healthy; the next sweep's
    // ReReplicate() refills it.
    repl->RestoreNode(n);
    cluster_->ResetNodeReadFailures(n);
    host_managers_[n] = controlplane::HostManager(options_.host_manager);
  }

  stats.single_copy_blocks = repl->CountSingleCopyBlocks();
  stats.lost_blocks = repl->CountLostBlocks();
  if (stats.single_copy_blocks > 0) {
    SDW_LOG(Warning) << stats.single_copy_blocks
                     << " blocks at a single copy (degraded mode: serving "
                        "continues, next sweep re-replicates)";
    event_log_.Record("sweep", "degraded", -1,
                      static_cast<double>(stats.single_copy_blocks),
                      "blocks at a single copy after sweep");
  }
  return stats;
}

void Warehouse::WireEncryption() { WireEncryptionOn(cluster_.get()); }

void Warehouse::WireEncryptionOn(cluster::Cluster* target) {
  if (keys_ == nullptr) return;
  security::KeyHierarchy* keys = keys_.get();
  for (int n = 0; n < target->num_nodes(); ++n) {
    storage::BlockStore* store = target->node(n)->store();
    store->set_write_transform(
        [keys](storage::BlockId id, Bytes data) -> Result<Bytes> {
          return keys->EncryptBlock(id, std::move(data));
        });
    store->set_read_transform(
        [keys](storage::BlockId id, Bytes data) -> Result<Bytes> {
          return keys->DecryptBlock(id, std::move(data));
        });
  }
}

Status Warehouse::RotateKeys() {
  if (keys_ == nullptr) {
    return Status::FailedPrecondition("warehouse is not encrypted");
  }
  return keys_->RotateClusterKey();
}

Status Warehouse::Begin() {
  if (in_txn_) {
    return Status::FailedPrecondition("already in a transaction");
  }
  SDW_ASSIGN_OR_RETURN(txn_manifest_, backup::CaptureManifest(cluster_.get()));
  in_txn_ = true;
  return Status::OK();
}

Status Warehouse::Commit() {
  if (!in_txn_) return Status::FailedPrecondition("no open transaction");
  in_txn_ = false;
  txn_manifest_ = backup::SnapshotManifest{};
  return Status::OK();
}

Status Warehouse::Rollback() {
  if (!in_txn_) return Status::FailedPrecondition("no open transaction");
  // Tables created inside the transaction disappear entirely.
  std::set<std::string> pre_txn;
  for (const auto& table : txn_manifest_.tables) {
    pre_txn.insert(table.schema.name());
  }
  for (const std::string& name : cluster_->catalog()->TableNames()) {
    if (!pre_txn.count(name)) {
      SDW_RETURN_IF_ERROR(cluster_->DropTable(name));
    }
  }
  // Pre-existing tables snap back to their captured chains. Blocks are
  // immutable and never deleted mid-transaction, so the old chains are
  // fully intact; blocks appended during the transaction become
  // garbage on the device (reclaimed by the next VACUUM).
  for (const auto& table : txn_manifest_.tables) {
    const std::string& name = table.schema.name();
    SDW_ASSIGN_OR_RETURN(TableSchema * live,
                         cluster_->catalog()->GetTableMutable(name));
    *live = table.schema;  // undo analyzer-assigned encodings etc.
    for (const auto& shard : table.shards) {
      cluster::ComputeNode* node = cluster_->NodeOfSlice(shard.global_slice);
      auto fresh = std::make_unique<storage::TableShard>(
          table.schema, cluster_->config().storage, node->store());
      SDW_RETURN_IF_ERROR(fresh->LoadChains(shard.chains));
      SDW_RETURN_IF_ERROR(node->ReplaceShard(
          cluster_->LocalSlice(shard.global_slice), name, std::move(fresh)));
    }
    TableStats stats;
    stats.row_count = table.stats_row_count;
    stats.columns.resize(table.schema.num_columns());
    cluster_->catalog()->UpdateStats(name, stats);
  }
  in_txn_ = false;
  txn_manifest_ = backup::SnapshotManifest{};
  return Status::OK();
}

Result<StatementResult> Warehouse::Execute(const std::string& sql) {
  SDW_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  StatementResult result;

  if (auto* txn = std::get_if<sql::TxnStmt>(&stmt)) {
    switch (txn->kind) {
      case sql::TxnStmt::Kind::kBegin:
        SDW_RETURN_IF_ERROR(Begin());
        result.message = "BEGIN";
        break;
      case sql::TxnStmt::Kind::kCommit:
        SDW_RETURN_IF_ERROR(Commit());
        result.message = "COMMIT";
        break;
      case sql::TxnStmt::Kind::kRollback:
        SDW_RETURN_IF_ERROR(Rollback());
        result.message = "ROLLBACK";
        break;
    }
    return result;
  }
  if (in_txn_ && (std::holds_alternative<sql::DropTableStmt>(stmt) ||
                  std::holds_alternative<sql::VacuumStmt>(stmt))) {
    return Status::NotSupported(
        "DROP TABLE / VACUUM reclaim blocks eagerly and cannot run inside "
        "a transaction");
  }

  if (auto* create = std::get_if<sql::CreateTableStmt>(&stmt)) {
    SDW_RETURN_IF_ERROR(cluster_->CreateTable(create->schema));
    result.message = "CREATE TABLE " + create->schema.name();
    return result;
  }
  if (auto* drop = std::get_if<sql::DropTableStmt>(&stmt)) {
    SDW_RETURN_IF_ERROR(cluster_->DropTable(drop->table));
    result.message = "DROP TABLE " + drop->table;
    return result;
  }
  if (auto* copy = std::get_if<sql::CopyStmt>(&stmt)) {
    load::CopyExecutor executor(cluster_.get(), &s3_, options_.region);
    load::CopyOptions copy_options;
    copy_options.format = copy->format == sql::CopyStmt::Format::kCsv
                              ? load::CopyFormat::kCsv
                              : load::CopyFormat::kJson;
    copy_options.compupdate = copy->compupdate;
    SDW_ASSIGN_OR_RETURN(result.copy_stats,
                         executor.CopyFromUri(copy->table, copy->source_uri,
                                              copy_options));
    result.message = "COPY " + std::to_string(result.copy_stats.rows_loaded) +
                     " rows into " + copy->table;
    return result;
  }
  if (auto* insert = std::get_if<sql::InsertStmt>(&stmt)) {
    SDW_ASSIGN_OR_RETURN(TableSchema schema,
                         cluster_->catalog()->GetTable(insert->table));
    std::vector<ColumnVector> columns;
    for (const ColumnDef& col : schema.columns()) {
      columns.emplace_back(col.type);
    }
    for (const Row& row : insert->rows) {
      if (row.size() != schema.num_columns()) {
        return Status::InvalidArgument("INSERT arity mismatch");
      }
      for (size_t c = 0; c < row.size(); ++c) {
        SDW_RETURN_IF_ERROR(columns[c].AppendDatum(row[c]));
      }
    }
    SDW_RETURN_IF_ERROR(cluster_->InsertRows(insert->table, columns));
    result.message =
        "INSERT " + std::to_string(insert->rows.size()) + " rows";
    return result;
  }
  if (auto* analyze = std::get_if<sql::AnalyzeStmt>(&stmt)) {
    SDW_RETURN_IF_ERROR(cluster_->Analyze(analyze->table));
    result.message = "ANALYZE " + analyze->table;
    return result;
  }
  if (auto* vacuum = std::get_if<sql::VacuumStmt>(&stmt)) {
    // Each COPY sorts its own run; VACUUM merges the accumulated runs
    // back into one fully-sorted region per slice.
    SDW_ASSIGN_OR_RETURN(uint64_t blocks, cluster_->Vacuum(vacuum->table));
    result.message = "VACUUM " + vacuum->table + " (" +
                     std::to_string(blocks) + " blocks rewritten)";
    return result;
  }
  auto& select = std::get<sql::SelectStmt>(stmt);
  if (IsSystemTable(select.query.from_table)) {
    // System-table queries run on the leader against the logs/registry
    // and are not themselves recorded in stl_query (monitoring should
    // not pollute what it monitors).
    if (select.explain) {
      return Status::NotSupported("EXPLAIN is not supported on system tables");
    }
    SDW_ASSIGN_OR_RETURN(
        SystemQueryResult sys,
        ExecuteSystemQuery(select.query, query_log_, event_log_,
                           cluster_.get()));
    result.rows = std::move(sys.rows);
    result.column_names = std::move(sys.column_names);
    result.message = std::to_string(result.rows.num_rows()) + " rows";
    return result;
  }
  plan::Planner planner(cluster_->catalog(), options_.planner);
  SDW_ASSIGN_OR_RETURN(plan::PhysicalQuery physical,
                       planner.Plan(select.query));
  if (select.explain && !select.explain_analyze) {
    result.message = physical.ToString();
    return result;
  }
  obs::QueryLog::Started started = query_log_.StartQuery();
  obs::QueryRecord record;
  record.query_id = started.query_id;
  record.sql_text = sql;
  record.start_tick = started.start_tick;
  cluster::QueryExecutor executor(cluster_.get(), options_.exec);
  Result<cluster::QueryResult> executed = executor.Execute(physical);
  if (!executed.ok()) {
    record.status = "error";
    query_log_.FinishQuery(std::move(record));
    return executed.status();
  }
  cluster::QueryResult query_result = std::move(executed).ValueOrDie();
  record.status = "success";
  record.result_rows = query_result.stats.result_rows;
  record.counters.rows_out = query_result.stats.result_rows;
  record.counters.blocks_decoded = query_result.stats.blocks_decoded;
  record.counters.bytes_shuffled = query_result.stats.network_bytes;
  record.counters.masked_reads = query_result.stats.masked_reads;
  record.counters.s3_fault_reads = query_result.stats.s3_fault_reads;
  record.trace = query_result.trace;
  // FinishQuery assigns the trace's virtual timestamps, so the EXPLAIN
  // ANALYZE rendering below sees final ticks.
  query_log_.FinishQuery(std::move(record));
  if (select.explain_analyze) {
    result.exec_stats = query_result.stats;
    result.message = RenderExplainAnalyze(physical, query_result);
    return result;
  }
  result.rows = std::move(query_result.rows);
  result.column_names = std::move(query_result.column_names);
  result.exec_stats = query_result.stats;
  result.message = std::to_string(result.rows.num_rows()) + " rows";
  return result;
}

Result<backup::BackupManager::BackupStats> Warehouse::Backup(
    bool user_initiated) {
  return backups_.Backup(cluster_.get(), user_initiated);
}

Status Warehouse::RestoreInPlace(uint64_t snapshot_id,
                                 backup::BackupManager::RestoreStats* stats) {
  if (in_txn_) {
    return Status::FailedPrecondition("cannot restore inside a transaction");
  }
  SDW_ASSIGN_OR_RETURN(std::unique_ptr<cluster::Cluster> restored,
                       backups_.StreamingRestore(snapshot_id, stats));
  cluster_ = std::move(restored);
  // Page-faulted blocks arrive as stored (encrypted) bytes; reads must
  // keep unwrapping them.
  WireEncryption();
  SyncHostManagers();
  return Status::OK();
}

Result<cluster::Cluster::ResizeStats> Warehouse::Resize(int new_num_nodes) {
  if (in_txn_) {
    return Status::FailedPrecondition("cannot resize inside a transaction");
  }
  cluster::Cluster::ResizeStats stats;
  // The target must encrypt blocks as the parallel copy lands, so its
  // stores get the at-rest transforms before any data moves.
  SDW_ASSIGN_OR_RETURN(
      std::unique_ptr<cluster::Cluster> target,
      cluster_->Resize(new_num_nodes, &stats,
                       [this](cluster::Cluster* fresh) {
                         WireEncryptionOn(fresh);
                       }));
  // Move the SQL endpoint and decommission the source (§3.1).
  cluster_ = std::move(target);
  SyncHostManagers();
  return stats;
}

}  // namespace sdw::warehouse
