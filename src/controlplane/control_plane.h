#ifndef SDW_CONTROLPLANE_CONTROL_PLANE_H_
#define SDW_CONTROLPLANE_CONTROL_PLANE_H_

#include <functional>
#include <string>
#include <vector>

#include "cluster/cost_model.h"
#include "common/random.h"
#include "common/result.h"
#include "obs/query_log.h"
#include "sim/engine.h"

namespace sdw::controlplane {

/// Service times for the workflow steps (simulated seconds). Defaults
/// approximate the paper's reported behaviour: ~15 min cold cluster
/// creation at launch, ~3 min with preconfigured warm nodes, minutes-
/// scale backup/restore/resize initiation regardless of cluster size
/// (Figure 2).
struct WorkflowTimings {
  /// Console interaction ("time spent on clicks", Figure 2).
  double clicks_create = 40;
  double clicks_simple_op = 15;

  /// Cold EC2 instance provisioning + engine install, per node.
  double provision_cold_node = 540;
  /// Attaching a preconfigured warm-pool node (§3.1: 15 min -> 3 min).
  double provision_warm_node = 90;
  /// Cluster-level finalization: DNS, endpoint, security groups.
  double finalize_endpoint = 75;

  /// Driver handshake + auth on first connect.
  double connect = 45;

  /// Per-node fixed cost of snapshot initiation.
  double backup_node_fixed = 30;
  /// Manifest/catalog commit at the end of a backup.
  double backup_commit = 20;

  /// Restore: metadata + catalog restoration before SQL opens (§2.3).
  double restore_metadata = 100;

  /// Per-node patch apply within the maintenance window.
  double patch_node = 120;
  /// Telemetry soak time before a patch is judged good (§5).
  double patch_soak = 300;
  /// Reverting a bad patch.
  double patch_rollback = 180;

  /// Detecting a dead node and swapping in a replacement.
  double failure_detect = 60;
};

/// A pool of preconfigured standby nodes per data center (§3.1, §5:
/// "we support the ability to preconfigure nodes in each data center,
/// allowing us to continue to provision ... if there is an Amazon EC2
/// provisioning interruption").
class WarmPool {
 public:
  WarmPool(int capacity, double refill_seconds)
      : capacity_(capacity), available_(capacity),
        refill_seconds_(refill_seconds) {}

  /// Takes up to n nodes; returns how many were granted.
  int Acquire(int n);

  /// Schedules background refill on the engine.
  void Refill(sim::Engine* engine);

  int available() const { return available_; }
  int capacity() const { return capacity_; }

  /// Fault injection: EC2 interruption stops refills; the pool keeps
  /// serving until drained (degrade, don't fail).
  void set_ec2_available(bool available) { ec2_available_ = available; }

 private:
  int capacity_;
  int available_;
  double refill_seconds_;
  bool ec2_available_ = true;
  bool refill_scheduled_ = false;
};

/// Result of one admin workflow.
struct OpResult {
  std::string op;
  /// Total simulated duration, including console clicks.
  double seconds = 0;
  /// The interactive portion (Figure 2 splits "time spent on clicks").
  double click_seconds = 0;
  bool rolled_back = false;
};

/// The off-instance control-plane fleet: executes admin workflows as
/// discrete-event simulations, data-parallel within a cluster (§2.2,
/// §3.2: "operations ... as declarative as queries, with the database
/// determining parallelization"). Every workflow returns its simulated
/// duration so the Figure-2 bench can sweep cluster sizes.
class ControlPlane {
 public:
  ControlPlane(sim::Engine* engine, WorkflowTimings timings = {},
               cluster::CostModel cost_model = {})
      : engine_(engine), timings_(timings), cost_model_(cost_model) {}

  /// Attaches a warm pool (optional).
  void set_warm_pool(WarmPool* pool) { warm_pool_ = pool; }

  /// Attaches an event log (optional): every workflow records an
  /// stl_health_events row with its simulated duration.
  void set_event_log(obs::EventLog* log) { event_log_ = log; }

  /// Creates an n-node cluster: provisioning is node-parallel; warm
  /// nodes attach ~6x faster than cold EC2 provisioning.
  OpResult ProvisionCluster(int nodes);

  /// First connection to a fresh endpoint.
  OpResult Connect();

  /// Snapshot: node-parallel upload of each node's changed bytes.
  OpResult Backup(int nodes, uint64_t changed_bytes_per_node);

  /// Streaming restore: SQL opens after metadata restoration; block
  /// download continues in background (duration reported = time to
  /// first query, matching what Figure 2 charts).
  OpResult Restore(int nodes);

  /// Resize via parallel node-to-node copy; source stays readable.
  OpResult Resize(int from_nodes, int to_nodes, uint64_t total_bytes);

  /// Rolling patch of a cluster within its maintenance window; the
  /// telemetry check rolls back automatically when the error rate
  /// rises (§5). `defect_probability` is the chance this patch is bad.
  OpResult Patch(int nodes, double defect_probability, Rng* rng);

  /// Failure detection + node replacement (host manager escalation).
  OpResult ReplaceNode();

 private:
  /// Runs `per_node` seconds of work on `nodes` nodes in parallel and
  /// returns the simulated makespan.
  double ParallelNodes(int nodes, double per_node);

  /// Records a workflow event when an event log is attached.
  void Emit(const std::string& kind, double seconds,
            const std::string& detail);

  sim::Engine* engine_;
  WorkflowTimings timings_;
  cluster::CostModel cost_model_;
  WarmPool* warm_pool_ = nullptr;
  obs::EventLog* event_log_ = nullptr;
};

/// Per-node host manager: monitors the database process and restarts it
/// on failure; escalates to the control plane after repeated crashes
/// (§2.2). Used by the fleet simulator's failure model.
class HostManager {
 public:
  struct Config {
    /// Crashes within this window escalate instead of restart.
    int max_restarts = 3;
    double restart_seconds = 30;
  };

  HostManager() : config_() {}
  explicit HostManager(Config config) : config_(config) {}

  /// Reports a database-process crash. Returns true if the host
  /// manager handles it locally (restart), false if it escalates to a
  /// control-plane node replacement.
  bool OnProcessCrash();

  /// Healthy heartbeat resets the crash counter.
  void OnHeartbeat() { recent_crashes_ = 0; }

  int restarts() const { return restarts_; }
  int escalations() const { return escalations_; }

 private:
  Config config_;
  int recent_crashes_ = 0;
  int restarts_ = 0;
  int escalations_ = 0;
};

}  // namespace sdw::controlplane

#endif  // SDW_CONTROLPLANE_CONTROL_PLANE_H_
