#include "controlplane/control_plane.h"

#include <algorithm>

namespace sdw::controlplane {

int WarmPool::Acquire(int n) {
  const int granted = std::min(n, available_);
  available_ -= granted;
  return granted;
}

void WarmPool::Refill(sim::Engine* engine) {
  if (!ec2_available_ || refill_scheduled_ || available_ >= capacity_) return;
  refill_scheduled_ = true;
  engine->Schedule(refill_seconds_, [this, engine] {
    refill_scheduled_ = false;
    if (ec2_available_ && available_ < capacity_) {
      ++available_;
      Refill(engine);
    }
  });
}

void ControlPlane::Emit(const std::string& kind, double seconds,
                        const std::string& detail) {
  if (event_log_ == nullptr) return;
  event_log_->Record("control_plane", kind, -1, seconds, detail);
}

double ControlPlane::ParallelNodes(int nodes, double per_node) {
  // All nodes execute the step concurrently; the makespan is one
  // node's service time. Run it through the engine so concurrent
  // workflows interleave correctly.
  const double start = engine_->Now();
  double end = start;
  sim::JoinBarrier barrier(nodes, [&] { end = engine_->Now(); });
  for (int n = 0; n < nodes; ++n) {
    engine_->Schedule(per_node, [&barrier] { barrier.Arrive(); });
  }
  engine_->Run();
  return end - start;
}

OpResult ControlPlane::ProvisionCluster(int nodes) {
  OpResult result;
  result.op = "deploy";
  result.click_seconds = timings_.clicks_create;

  int warm = 0;
  if (warm_pool_ != nullptr) {
    warm = warm_pool_->Acquire(nodes);
    warm_pool_->Refill(engine_);
  }
  const int cold = nodes - warm;
  // Warm attaches and cold provisions proceed in parallel; the cold
  // path dominates when the pool runs dry.
  double makespan = 0;
  if (warm > 0) {
    makespan = std::max(makespan,
                        ParallelNodes(warm, timings_.provision_warm_node));
  }
  if (cold > 0) {
    makespan = std::max(makespan,
                        ParallelNodes(cold, timings_.provision_cold_node));
  }
  result.seconds = result.click_seconds + makespan + timings_.finalize_endpoint;
  Emit("deploy", result.seconds, std::to_string(nodes) + " nodes (" +
                                     std::to_string(warm) + " warm)");
  return result;
}

OpResult ControlPlane::Connect() {
  OpResult result;
  result.op = "connect";
  result.click_seconds = timings_.clicks_simple_op;
  result.seconds = result.click_seconds + timings_.connect;
  return result;
}

OpResult ControlPlane::Backup(int nodes, uint64_t changed_bytes_per_node) {
  OpResult result;
  result.op = "backup";
  result.click_seconds = timings_.clicks_simple_op;
  // "The time required to backup an entire cluster is proportional to
  // the data changed on a single node" (§3.2) — node-parallel upload.
  const double per_node =
      timings_.backup_node_fixed +
      cost_model_.S3Seconds(changed_bytes_per_node, 1);
  result.seconds = result.click_seconds + ParallelNodes(nodes, per_node) +
                   timings_.backup_commit;
  return result;
}

OpResult ControlPlane::Restore(int nodes) {
  OpResult result;
  result.op = "restore";
  result.click_seconds = timings_.clicks_simple_op;
  // Streaming restore: SQL opens after metadata restoration; data
  // blocks page-fault in afterwards, so cluster size barely matters.
  result.seconds = result.click_seconds + timings_.restore_metadata +
                   ParallelNodes(nodes, timings_.finalize_endpoint);
  return result;
}

OpResult ControlPlane::Resize(int from_nodes, int to_nodes,
                              uint64_t total_bytes) {
  OpResult result;
  result.op = "resize";
  result.click_seconds = timings_.clicks_simple_op;
  // Provision the target (warm-pool eligible), then node-to-node copy
  // bounded by the smaller side's aggregate bandwidth (§3.1).
  OpResult provision = ProvisionCluster(to_nodes);
  const double copy_seconds = cost_model_.NetworkSeconds(
      total_bytes, std::min(from_nodes, to_nodes));
  result.seconds = result.click_seconds + (provision.seconds -
                   provision.click_seconds) + copy_seconds +
                   timings_.finalize_endpoint;
  return result;
}

OpResult ControlPlane::Patch(int nodes, double defect_probability, Rng* rng) {
  OpResult result;
  result.op = "patch";
  result.click_seconds = 0;  // automatic, in the customer window
  double makespan = ParallelNodes(nodes, timings_.patch_node);
  makespan += timings_.patch_soak;
  if (rng->Bernoulli(defect_probability)) {
    // Telemetry shows elevated errors: automatic reversal (§5).
    makespan += ParallelNodes(nodes, timings_.patch_rollback);
    result.rolled_back = true;
  }
  result.seconds = makespan;
  Emit(result.rolled_back ? "patch_rollback" : "patch", result.seconds,
       std::to_string(nodes) + " nodes");
  return result;
}

OpResult ControlPlane::ReplaceNode() {
  OpResult result;
  result.op = "replace-node";
  result.click_seconds = 0;
  double provision = timings_.provision_cold_node;
  if (warm_pool_ != nullptr && warm_pool_->Acquire(1) == 1) {
    provision = timings_.provision_warm_node;
    warm_pool_->Refill(engine_);
  }
  result.seconds = timings_.failure_detect + provision;
  Emit("replace", result.seconds,
       provision == timings_.provision_warm_node ? "warm-pool node"
                                                 : "cold provision");
  return result;
}

bool HostManager::OnProcessCrash() {
  ++recent_crashes_;
  if (recent_crashes_ > config_.max_restarts) {
    ++escalations_;
    recent_crashes_ = 0;
    return false;
  }
  ++restarts_;
  return true;
}

}  // namespace sdw::controlplane
