#include "obs/alerts.h"

#include <cstdarg>
#include <cstdio>

namespace sdw::obs {

void AlertLog::Record(std::vector<AlertEvent> events) {
  common::MutexLock lock(mu_);
  for (AlertEvent& e : events) {
    e.alert_id = next_alert_id_++;
    events_.push_back(std::move(e));
  }
}

std::vector<AlertEvent> AlertLog::Snapshot() const {
  common::MutexLock lock(mu_);
  return events_;
}

void AlertLog::Clear() {
  common::MutexLock lock(mu_);
  events_.clear();
  next_alert_id_ = 1;
}

namespace {

std::string Fmt(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

}  // namespace

std::vector<AlertEvent> EvaluateQueryAlerts(const QueryAlertInputs& in) {
  std::vector<AlertEvent> out;
  uint64_t total_blocks_read = 0;
  for (const ScanRecord& scan : in.scans) {
    total_blocks_read += scan.blocks_read;
    // A filter selective enough to matter (kept <=1/20 of >=100 decoded
    // rows) that zone maps did nothing for (skipped 0 of >=4 blocks):
    // the table's sort order does not serve this predicate.
    if (!scan.predicates.empty() && scan.rows_scanned >= 100 &&
        scan.rows_out * 20 <= scan.rows_scanned && scan.blocks_skipped == 0 &&
        scan.blocks_read >= 4) {
      AlertEvent e;
      e.query_id = in.query_id;
      e.tick = in.tick;
      e.rule = "selective-filter-no-skip";
      e.table = scan.table;
      e.evidence = static_cast<double>(scan.blocks_read);
      e.detail = Fmt("scan kept %llu of %llu rows but zone maps skipped 0 of "
                     "%llu blocks (%s)",
                     static_cast<unsigned long long>(scan.rows_out),
                     static_cast<unsigned long long>(scan.rows_scanned),
                     static_cast<unsigned long long>(scan.blocks_read),
                     scan.predicates.c_str());
      e.action = "add a sort key on the filtered column so zone maps can "
                 "skip blocks";
      out.push_back(std::move(e));
    }
  }
  if (in.masked_reads > 0 && in.masked_reads * 2 >= total_blocks_read) {
    AlertEvent e;
    e.query_id = in.query_id;
    e.tick = in.tick;
    e.rule = "masked-read-dominated";
    e.evidence = static_cast<double>(in.masked_reads);
    e.detail = Fmt("%llu of %llu block reads were served from replica "
                   "fallbacks",
                   static_cast<unsigned long long>(in.masked_reads),
                   static_cast<unsigned long long>(total_blocks_read));
    e.action = "run a health sweep to restart failed nodes and re-replicate "
               "degraded blocks";
    out.push_back(std::move(e));
  }
  if (in.queue_seconds > in.exec_seconds && in.queue_seconds > 0.05) {
    AlertEvent e;
    e.query_id = in.query_id;
    e.tick = in.tick;
    e.rule = "queue-wait-exceeds-exec";
    e.evidence = in.queue_seconds;
    e.detail = Fmt("queued %.3fs vs %.3fs executing", in.queue_seconds,
                   in.exec_seconds);
    e.action = "add WLM concurrency slots or route the queue to a burst "
               "cluster";
    out.push_back(std::move(e));
  }
  if (in.repeat_cache_miss) {
    AlertEvent e;
    e.query_id = in.query_id;
    e.tick = in.tick;
    e.rule = "result-cache-repeat-miss";
    e.evidence = 1;
    e.detail = "repeated statement fingerprint missed the result cache";
    e.action = "check for write-driven invalidation churn on the tables this "
               "statement reads";
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<AlertEvent> EvaluateSweepAlerts(const SweepAlertInputs& in) {
  std::vector<AlertEvent> out;
  const GaugeSample& s = in.sample;
  if (in.wlm_slots > 0 && s.wlm_queued >= in.wlm_slots) {
    AlertEvent e;
    e.tick = in.tick;
    e.rule = "wlm-queue-backlog";
    e.evidence = static_cast<double>(s.wlm_queued);
    e.detail = Fmt("%d statements queued against %d slots (%d running)",
                   s.wlm_queued, in.wlm_slots, s.wlm_running);
    e.action = "add WLM concurrency slots or route the queue to a burst "
               "cluster";
    out.push_back(std::move(e));
  }
  if (s.degraded_blocks > 0) {
    AlertEvent e;
    e.tick = in.tick;
    e.rule = "replication-degraded";
    e.evidence = static_cast<double>(s.degraded_blocks);
    e.detail = Fmt("%llu replicated blocks are down to a single copy",
                   static_cast<unsigned long long>(s.degraded_blocks));
    e.action = "re-replication is in progress; investigate the failed nodes";
    out.push_back(std::move(e));
  }
  if (in.gc_threshold > 0 && s.gc_backlog >= in.gc_threshold) {
    AlertEvent e;
    e.tick = in.tick;
    e.rule = "gc-backlog";
    e.evidence = static_cast<double>(s.gc_backlog);
    e.detail = Fmt("%llu MVCC versions pending collection (threshold %llu)",
                   static_cast<unsigned long long>(s.gc_backlog),
                   static_cast<unsigned long long>(in.gc_threshold));
    e.action = "sweep-triggered VACUUM will collect once readers unpin";
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace sdw::obs
