#include "obs/query_log.h"

namespace sdw::obs {

QueryLog::Started QueryLog::StartQuery() {
  common::MutexLock lock(mu_);
  return {next_query_id_++, clock_};
}

uint64_t QueryLog::FinishQuery(QueryRecord record) {
  common::MutexLock lock(mu_);
  if (record.trace) {
    record.trace->AssignVirtualTimes(record.start_tick);
    record.end_tick = record.trace->end_tick();
  } else {
    record.end_tick = record.start_tick + 1;
  }
  clock_ = std::max(clock_, record.end_tick);
  uint64_t end_tick = record.end_tick;
  records_.push_back(std::move(record));
  return end_tick;
}

std::vector<QueryRecord> QueryLog::Snapshot() const {
  common::MutexLock lock(mu_);
  return records_;
}

uint64_t QueryLog::now() const {
  common::MutexLock lock(mu_);
  return clock_;
}

void QueryLog::Clear() {
  common::MutexLock lock(mu_);
  records_.clear();
  next_query_id_ = 1;
  clock_ = 0;
}

void EventLog::Record(const std::string& source, const std::string& kind,
                      int node, double value, const std::string& detail) {
  common::MutexLock lock(mu_);
  HealthEvent e;
  e.event_id = next_event_id_++;
  e.tick = tick_++;
  e.source = source;
  e.kind = kind;
  e.node = node;
  e.value = value;
  e.detail = detail;
  events_.push_back(std::move(e));
}

std::vector<HealthEvent> EventLog::Snapshot() const {
  common::MutexLock lock(mu_);
  return events_;
}

void EventLog::Clear() {
  common::MutexLock lock(mu_);
  events_.clear();
  next_event_id_ = 1;
  tick_ = 0;
}

}  // namespace sdw::obs
