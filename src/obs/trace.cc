#include "obs/trace.h"

#include <algorithm>
#include <map>

namespace sdw::obs {

namespace {
thread_local SpanCounters* tls_span_counters = nullptr;
}  // namespace

Span* Trace::AddSpan(const std::string& name, int parent_id, int stage,
                     int slice) {
  Span s;
  s.span_id = static_cast<int>(spans_.size());
  s.parent_id = parent_id;
  s.name = name;
  s.stage = stage;
  s.slice = slice;
  spans_.push_back(std::move(s));
  return &spans_.back();
}

SpanCounters Trace::SumByName(const std::string& name) const {
  SpanCounters total;
  for (const auto& s : spans_) {
    if (s.name == name) total += s.counters;
  }
  return total;
}

uint64_t Trace::LeafTicks(const Span& s) const {
  return 1 + s.counters.rows_out + s.counters.blocks_decoded +
         s.counters.bytes_shuffled / 1024 +
         10 * (s.counters.masked_reads + s.counters.s3_fault_reads);
}

uint64_t Trace::Layout(Span& span, uint64_t start) {
  span.start_tick = start;
  // Children grouped by stage; stages run back-to-back, spans within a
  // stage run in parallel (same start, stage ends at max child end).
  std::map<int, std::vector<Span*>> stages;
  for (auto& child : spans_) {
    if (child.parent_id == span.span_id) stages[child.stage].push_back(&child);
  }
  uint64_t cursor = start;
  for (auto& [_, group] : stages) {
    uint64_t stage_end = cursor;
    for (Span* child : group) {
      stage_end = std::max(stage_end, Layout(*child, cursor));
    }
    cursor = stage_end;
  }
  uint64_t end = std::max(cursor, start + LeafTicks(span));
  span.end_tick = end;
  return end;
}

void Trace::AssignVirtualTimes(uint64_t query_start_tick) {
  if (spans_.empty()) return;
  Layout(spans_.front(), query_start_tick);
}

uint64_t Trace::end_tick() const {
  return spans_.empty() ? 0 : spans_.front().end_tick;
}

SpanCounters* CurrentSpanCounters() { return tls_span_counters; }

ScopedSpan::ScopedSpan(Span* span) : prev_(tls_span_counters) {
  tls_span_counters = span ? &span->counters : nullptr;
}

ScopedSpan::~ScopedSpan() { tls_span_counters = prev_; }

}  // namespace sdw::obs
