#include "obs/profiler.h"

#include "sim/stopwatch.h"

namespace sdw::obs {

void ScanLog::Append(std::vector<ScanRecord> records) {
  common::MutexLock lock(mu_);
  for (ScanRecord& r : records) {
    r.scan_id = next_scan_id_++;
    TableHeat& heat = heat_[r.table];
    heat.scans++;
    heat.rows_scanned += r.rows_scanned;
    heat.rows_out += r.rows_out;
    heat.blocks_read += r.blocks_read;
    heat.blocks_skipped += r.blocks_skipped;
    heat.bytes_decoded += r.bytes_decoded;
    records_.push_back(std::move(r));
  }
}

std::vector<ScanRecord> ScanLog::Snapshot() const {
  common::MutexLock lock(mu_);
  return records_;
}

std::map<std::string, TableHeat> ScanLog::Heat() const {
  common::MutexLock lock(mu_);
  return heat_;
}

void ScanLog::Clear() {
  common::MutexLock lock(mu_);
  records_.clear();
  heat_.clear();
  next_scan_id_ = 1;
}

const char* QueryPhaseName(QueryPhase phase) {
  switch (phase) {
    case QueryPhase::kQueued:
      return "queued";
    case QueryPhase::kPlan:
      return "plan";
    case QueryPhase::kExec:
      return "exec";
    case QueryPhase::kFinalize:
      return "finalize";
  }
  return "unknown";
}

void QueryProgress::set_phase(QueryPhase phase) {
  if (phase != QueryPhase::kQueued) {
    int64_t expected = -1;
    exec_start_ns_.compare_exchange_strong(expected, sim::MonotonicNanos(),
                                           std::memory_order_relaxed);
  }
  phase_.store(static_cast<int>(phase), std::memory_order_relaxed);
}

double QueryProgress::exec_seconds() const {
  int64_t start = exec_start_ns_.load(std::memory_order_relaxed);
  if (start < 0) return 0;
  return static_cast<double>(sim::MonotonicNanos() - start) * 1e-9;
}

InflightRegistry::Ticket& InflightRegistry::Ticket::operator=(
    Ticket&& other) noexcept {
  if (this != &other) {
    Release();
    owner_ = other.owner_;
    id_ = other.id_;
    progress_ = other.progress_;
    other.owner_ = nullptr;
    other.id_ = 0;
    other.progress_ = nullptr;
  }
  return *this;
}

void InflightRegistry::Ticket::Release() {
  if (owner_ != nullptr) {
    owner_->Unregister(id_);
    owner_ = nullptr;
    progress_ = nullptr;
  }
}

InflightRegistry::Ticket InflightRegistry::Register(
    int session_id, const std::string& statement) {
  common::MutexLock lock(mu_);
  Slot slot;
  slot.id = next_id_++;
  slot.session_id = session_id;
  slot.statement = statement;
  slot.progress = std::make_unique<QueryProgress>();
  Ticket ticket;
  ticket.owner_ = this;
  ticket.id_ = slot.id;
  ticket.progress_ = slot.progress.get();
  slots_.push_back(std::move(slot));
  return ticket;
}

void InflightRegistry::Unregister(int id) {
  common::MutexLock lock(mu_);
  for (auto it = slots_.begin(); it != slots_.end(); ++it) {
    if (it->id == id) {
      slots_.erase(it);
      return;
    }
  }
}

std::vector<InflightEntry> InflightRegistry::Snapshot() const {
  common::MutexLock lock(mu_);
  std::vector<InflightEntry> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    InflightEntry e;
    e.inflight_id = slot.id;
    e.session_id = slot.session_id;
    e.statement = slot.statement;
    e.phase = QueryPhaseName(slot.progress->phase());
    e.rows_scanned = slot.progress->rows_scanned();
    e.slices_done = slot.progress->slices_done();
    e.slices_total = slot.progress->slices_total();
    e.queued_seconds = slot.progress->queued_seconds();
    e.exec_seconds = slot.progress->exec_seconds();
    out.push_back(std::move(e));
  }
  return out;
}

void GaugeHistory::Record(GaugeSample sample) {
  common::MutexLock lock(mu_);
  sample.seq = next_seq_++;
  ring_.push_back(sample);
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<GaugeSample> GaugeHistory::Snapshot() const {
  common::MutexLock lock(mu_);
  return {ring_.begin(), ring_.end()};
}

void GaugeHistory::Clear() {
  common::MutexLock lock(mu_);
  ring_.clear();
  next_seq_ = 1;
}

}  // namespace sdw::obs
