#ifndef SDW_OBS_QUERY_LOG_H_
#define SDW_OBS_QUERY_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/trace.h"

namespace sdw::obs {

/// One finished query as recorded in stl_query. Ticks come from the
/// owning warehouse's virtual clock (starts at 0 per warehouse), so two
/// warehouses running the same workload log identical histories.
struct QueryRecord {
  int query_id = 0;
  std::string sql_text;
  std::string status;  // "success" | "error"
  uint64_t start_tick = 0;
  uint64_t end_tick = 0;
  uint64_t result_rows = 0;
  /// Measured admission wait vs execution time (the stl_query timing
  /// split). Real seconds, not virtual ticks — they never feed the
  /// deterministic byte-identity comparisons.
  double queue_seconds = 0;
  double exec_seconds = 0;
  /// The MVCC snapshot the query read: "table@version ..." for every
  /// pinned table, empty for non-SELECT statements and cache hits that
  /// never pinned one.
  std::string snapshot;
  SpanCounters counters;
  std::shared_ptr<Trace> trace;  // null when tracing was disabled

  uint64_t elapsed() const { return end_tick - start_tick; }
};

/// Per-warehouse history of executed queries plus the warehouse's
/// virtual clock. Thread-safe: a warehouse may serve concurrent
/// Execute() calls.
class QueryLog {
 public:
  /// Reserves a query id and the query's start tick.
  struct Started {
    int query_id;
    uint64_t start_tick;
  };
  Started StartQuery() SDW_EXCLUDES(mu_);

  /// Records a finished query: assigns virtual times to its trace
  /// (if any), advances the warehouse clock past the query's end, and
  /// appends the record. Returns the query's end tick (callers stamp
  /// follow-on records like alerts with it).
  uint64_t FinishQuery(QueryRecord record) SDW_EXCLUDES(mu_);

  std::vector<QueryRecord> Snapshot() const SDW_EXCLUDES(mu_);
  uint64_t now() const SDW_EXCLUDES(mu_);
  void Clear() SDW_EXCLUDES(mu_);

 private:
  mutable common::Mutex mu_{common::LockRank::kQueryLog};
  int next_query_id_ SDW_GUARDED_BY(mu_) = 1;
  uint64_t clock_ SDW_GUARDED_BY(mu_) = 0;
  std::vector<QueryRecord> records_ SDW_GUARDED_BY(mu_);
};

/// One health/control-plane event as recorded in stl_health_events.
struct HealthEvent {
  int event_id = 0;
  uint64_t tick = 0;
  std::string source;  // "host_manager" | "control_plane" | "sweep"
  std::string kind;    // "restart" | "replace" | "rereplicate" | ...
  int node = -1;
  double value = 0;
  std::string detail;
};

/// Append-only event history, shared by the warehouse's health sweep
/// and the control plane. Thread-safe.
class EventLog {
 public:
  void Record(const std::string& source, const std::string& kind, int node,
              double value, const std::string& detail) SDW_EXCLUDES(mu_);
  std::vector<HealthEvent> Snapshot() const SDW_EXCLUDES(mu_);
  void Clear() SDW_EXCLUDES(mu_);

 private:
  mutable common::Mutex mu_{common::LockRank::kEventLog};
  int next_event_id_ SDW_GUARDED_BY(mu_) = 1;
  uint64_t tick_ SDW_GUARDED_BY(mu_) = 0;
  std::vector<HealthEvent> events_ SDW_GUARDED_BY(mu_);
};

}  // namespace sdw::obs

#endif  // SDW_OBS_QUERY_LOG_H_
