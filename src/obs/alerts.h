#ifndef SDW_OBS_ALERTS_H_
#define SDW_OBS_ALERTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/profiler.h"

namespace sdw::obs {

/// One stl_alert_event_log row: a performance-advisor finding, in the
/// spirit of Redshift's alert event log. `evidence` is the number the
/// rule tripped on (blocks read, masked reads, queue seconds, ...) and
/// `action` is the suggested remediation.
struct AlertEvent {
  int alert_id = 0;
  /// Query that fired the alert, or -1 for sweep-time threshold rules.
  int query_id = -1;
  uint64_t tick = 0;
  std::string rule;
  std::string table;  // empty when the rule is not table-specific
  double evidence = 0;
  std::string detail;
  std::string action;
};

/// Append-only alert history. Thread-safe.
class AlertLog {
 public:
  void Record(std::vector<AlertEvent> events) SDW_EXCLUDES(mu_);
  std::vector<AlertEvent> Snapshot() const SDW_EXCLUDES(mu_);
  void Clear() SDW_EXCLUDES(mu_);

 private:
  mutable common::Mutex mu_{common::LockRank::kAlertLog};
  int next_alert_id_ SDW_GUARDED_BY(mu_) = 1;
  std::vector<AlertEvent> events_ SDW_GUARDED_BY(mu_);
};

/// Everything the per-query rules look at, gathered at query finish.
/// Only deterministic inputs (scan telemetry, virtual ticks) decide
/// whether the deterministic rules fire; the queue-wait rule is the one
/// exception and is driven by measured seconds, with a floor high
/// enough that uncontended runs never trip it.
struct QueryAlertInputs {
  int query_id = 0;
  uint64_t tick = 0;  // the query's end tick
  std::vector<ScanRecord> scans;
  uint64_t masked_reads = 0;
  double queue_seconds = 0;
  double exec_seconds = 0;
  /// True when the result cache was consulted, missed, and the same
  /// statement fingerprint had been seen before — a repeat that should
  /// have hit.
  bool repeat_cache_miss = false;
};

/// Evaluates the per-query rules. Rules, in evaluation order:
///  - selective-filter-no-skip: a predicated scan kept <=1/20 of the
///    rows it decoded yet zone maps skipped zero of >=4 blocks — the
///    sort key does not cover the filter column.
///  - masked-read-dominated: replica-masked reads were >=half of the
///    blocks the query read; it is running on degraded copies.
///  - queue-wait-exceeds-exec: admission wait exceeded execution time
///    (and was >50ms) — concurrency, not the query, is the bottleneck.
///  - result-cache-repeat-miss: a repeated statement missed the result
///    cache it was eligible for.
std::vector<AlertEvent> EvaluateQueryAlerts(const QueryAlertInputs& in);

/// Sweep-time threshold rules over one gauge sample.
struct SweepAlertInputs {
  uint64_t tick = 0;
  GaugeSample sample;
  int wlm_slots = 0;        // concurrency slots configured
  uint64_t gc_threshold = 0;  // health_gc_threshold; 0 disables the rule
};

/// Evaluates the sweep rules: wlm-queue-backlog (queue depth reached the
/// slot count), replication-degraded (blocks down to one copy), and
/// gc-backlog (pending MVCC garbage at or past the sweep threshold).
std::vector<AlertEvent> EvaluateSweepAlerts(const SweepAlertInputs& in);

}  // namespace sdw::obs

#endif  // SDW_OBS_ALERTS_H_
