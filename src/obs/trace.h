#ifndef SDW_OBS_TRACE_H_
#define SDW_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace sdw::obs {

/// Work counters attributed to one span. All fields are deterministic
/// function-of-the-workload counts (never wall-clock derived), which is
/// what lets serial and pooled runs of the same workload produce
/// identical system-table contents.
struct SpanCounters {
  uint64_t rows_out = 0;
  uint64_t blocks_decoded = 0;
  uint64_t bytes_shuffled = 0;
  uint64_t masked_reads = 0;
  uint64_t s3_fault_reads = 0;

  SpanCounters& operator+=(const SpanCounters& o) {
    rows_out += o.rows_out;
    blocks_decoded += o.blocks_decoded;
    bytes_shuffled += o.bytes_shuffled;
    masked_reads += o.masked_reads;
    s3_fault_reads += o.s3_fault_reads;
    return *this;
  }
};

/// One node of a query's execution trace. Virtual timestamps are
/// assigned after the fact by Trace::AssignVirtualTimes: spans in the
/// same `stage` under one parent are modeled as running in parallel
/// (they share a start tick; the stage ends at the max child end),
/// stages run sequentially, and a span's own duration is a
/// deterministic function of its counters.
struct Span {
  int span_id = 0;
  int parent_id = -1;  // -1 for the root
  std::string name;
  int slice = -1;  // slice index where applicable, else -1
  int stage = 0;   // sequential phase index under the parent
  SpanCounters counters;
  /// Measured wall-clock seconds; informational only — never used for
  /// virtual timestamps and never surfaced in system tables.
  double real_seconds = 0;
  // Filled in by AssignVirtualTimes.
  uint64_t start_tick = 0;
  uint64_t end_tick = 0;
};

/// A per-query collection of spans. Not thread-safe for AddSpan —
/// create all spans for a parallel phase on the leader thread before
/// fanning out; worker threads may then write their own span's
/// counters freely (deque gives pointer stability).
class Trace {
 public:
  /// Creates a span and returns a stable pointer into the trace.
  Span* AddSpan(const std::string& name, int parent_id, int stage,
                int slice = -1);

  Span* root() { return spans_.empty() ? nullptr : &spans_.front(); }
  const Span* root() const {
    return spans_.empty() ? nullptr : &spans_.front();
  }
  const std::deque<Span>& spans() const { return spans_; }
  std::deque<Span>& spans() { return spans_; }

  /// Sums counters over every span named `name`.
  SpanCounters SumByName(const std::string& name) const;

  /// Assigns start/end ticks from the parent/stage structure and each
  /// span's counters. Leaf duration = 1 + rows_out + blocks_decoded +
  /// bytes_shuffled/1024 + 10*(masked_reads + s3_fault_reads) ticks;
  /// parent duration covers its children. Deterministic: depends only
  /// on tree shape and counters, not thread scheduling.
  void AssignVirtualTimes(uint64_t query_start_tick);

  uint64_t end_tick() const;

 private:
  uint64_t LeafTicks(const Span& s) const;
  uint64_t Layout(Span& span, uint64_t start);

  std::deque<Span> spans_;
};

/// Thread-local ambient span counters. Deep layers (TableShard decode,
/// Cluster fault masking) attribute work to whatever span the executor
/// has made current on this thread, without plumbing a span through
/// every call signature. Null when no span is current (non-query work).
SpanCounters* CurrentSpanCounters();

/// RAII: makes `span`'s counters current on this thread for its scope.
class ScopedSpan {
 public:
  explicit ScopedSpan(Span* span);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanCounters* prev_;
};

}  // namespace sdw::obs

#endif  // SDW_OBS_TRACE_H_
