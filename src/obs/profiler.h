#ifndef SDW_OBS_PROFILER_H_
#define SDW_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace sdw::obs {

// ---------------------------------------------------------------------------
// stl_scan: per-scan-operator telemetry.
// ---------------------------------------------------------------------------

/// One scan operator's telemetry as recorded in stl_scan. Every field is
/// derived from immutable version metadata (block boundaries, zone maps)
/// and deterministic row counts, never from decode-cache state or wall
/// time, so serial and pooled runs log byte-identical rows.
struct ScanRecord {
  int scan_id = 0;
  int query_id = 0;
  std::string table;
  /// Where in the plan the scan ran: "probe" or "build".
  std::string site;
  /// Canonical text of the pushed-down range predicates plus any
  /// residual filter, e.g. "k >= 3 and k <= 9, filter(v > 100)".
  /// Empty for a full unfiltered scan.
  std::string predicates;
  uint64_t rows_scanned = 0;   // rows decoded (before the filter)
  uint64_t rows_out = 0;       // rows surviving the filter
  uint64_t blocks_read = 0;    // blocks overlapping a candidate range
  uint64_t blocks_skipped = 0; // blocks pruned by zone maps
  uint64_t bytes_decoded = 0;  // encoded bytes of the blocks read
};

/// Per-table aggregate of the scan history — the in-memory "block heat"
/// summary the reclustering roadmap item mines.
struct TableHeat {
  uint64_t scans = 0;
  uint64_t rows_scanned = 0;
  uint64_t rows_out = 0;
  uint64_t blocks_read = 0;
  uint64_t blocks_skipped = 0;
  uint64_t bytes_decoded = 0;
};

/// Append-only scan history plus the per-table heat map. Thread-safe:
/// queries finishing on concurrent sessions append batches atomically.
class ScanLog {
 public:
  /// Appends the records in order, assigning contiguous scan_ids and
  /// folding each into its table's heat entry.
  void Append(std::vector<ScanRecord> records) SDW_EXCLUDES(mu_);

  std::vector<ScanRecord> Snapshot() const SDW_EXCLUDES(mu_);
  std::map<std::string, TableHeat> Heat() const SDW_EXCLUDES(mu_);
  void Clear() SDW_EXCLUDES(mu_);

 private:
  mutable common::Mutex mu_{common::LockRank::kScanLog};
  int next_scan_id_ SDW_GUARDED_BY(mu_) = 1;
  std::vector<ScanRecord> records_ SDW_GUARDED_BY(mu_);
  std::map<std::string, TableHeat> heat_ SDW_GUARDED_BY(mu_);
};

// ---------------------------------------------------------------------------
// stv_inflight: live in-flight query state.
// ---------------------------------------------------------------------------

enum class QueryPhase : int { kQueued = 0, kPlan = 1, kExec = 2, kFinalize = 3 };

const char* QueryPhaseName(QueryPhase phase);

/// Lock-free progress counters for one in-flight statement. Pipeline
/// operators bump these from pool workers with relaxed atomics; a
/// concurrent stv_inflight reader snapshots them without taking any
/// lock the execution path holds.
class QueryProgress {
 public:
  void set_phase(QueryPhase phase);
  QueryPhase phase() const {
    return static_cast<QueryPhase>(phase_.load(std::memory_order_relaxed));
  }

  void set_queued_seconds(double s) {
    queued_seconds_.store(s, std::memory_order_relaxed);
  }
  double queued_seconds() const {
    return queued_seconds_.load(std::memory_order_relaxed);
  }

  void AddRowsScanned(uint64_t n) {
    rows_scanned_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t rows_scanned() const {
    return rows_scanned_.load(std::memory_order_relaxed);
  }

  void set_slices_total(int n) {
    slices_total_.store(n, std::memory_order_relaxed);
  }
  void SliceDone() { slices_done_.fetch_add(1, std::memory_order_relaxed); }
  int slices_done() const {
    return slices_done_.load(std::memory_order_relaxed);
  }
  int slices_total() const {
    return slices_total_.load(std::memory_order_relaxed);
  }

  /// Real seconds since the statement left the admission queue; 0 while
  /// still queued. Measured, not virtual — stv_inflight is a live
  /// operational view, not part of the deterministic history.
  double exec_seconds() const;

 private:
  std::atomic<int> phase_{static_cast<int>(QueryPhase::kQueued)};
  std::atomic<uint64_t> rows_scanned_{0};
  std::atomic<int> slices_done_{0};
  std::atomic<int> slices_total_{0};
  std::atomic<double> queued_seconds_{0.0};
  std::atomic<int64_t> exec_start_ns_{-1};
};

/// One stv_inflight row.
struct InflightEntry {
  int inflight_id = 0;
  int session_id = 0;
  std::string statement;
  std::string phase;
  uint64_t rows_scanned = 0;
  int slices_done = 0;
  int slices_total = 0;
  double queued_seconds = 0;
  double exec_seconds = 0;
};

/// Registry of statements currently inside the front door. A statement
/// registers on entry and holds the returned RAII Ticket for its whole
/// lifetime; the destructor removes the entry, so stv_inflight only ever
/// shows genuinely live work.
class InflightRegistry {
 public:
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept;
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    /// Valid until the ticket is destroyed; null for a default ticket.
    QueryProgress* progress() const { return progress_; }
    explicit operator bool() const { return owner_ != nullptr; }

   private:
    friend class InflightRegistry;
    void Release();
    InflightRegistry* owner_ = nullptr;
    int id_ = 0;
    QueryProgress* progress_ = nullptr;
  };

  Ticket Register(int session_id, const std::string& statement)
      SDW_EXCLUDES(mu_);
  std::vector<InflightEntry> Snapshot() const SDW_EXCLUDES(mu_);

 private:
  struct Slot {
    int id = 0;
    int session_id = 0;
    std::string statement;
    std::unique_ptr<QueryProgress> progress;  // stable address for Ticket
  };

  void Unregister(int id) SDW_EXCLUDES(mu_);

  mutable common::Mutex mu_{common::LockRank::kInflightRegistry};
  int next_id_ SDW_GUARDED_BY(mu_) = 1;
  std::vector<Slot> slots_ SDW_GUARDED_BY(mu_);
};

// ---------------------------------------------------------------------------
// stv_gauge_history: periodic gauge samples from the health sweep.
// ---------------------------------------------------------------------------

/// One gauge sample, taken by RunHealthSweep on the virtual clock.
/// The wlm_* fields aggregate over every queue; `queues` breaks the
/// same occupancy down per WLM queue (declaration order, "sqa" last)
/// so stv_gauge_history can chart the fleet per class.
struct GaugeSample {
  int seq = 0;
  uint64_t tick = 0;
  int wlm_queued = 0;
  int wlm_running = 0;
  int wlm_max_in_flight = 0;
  double result_cache_hit_rate = 0;
  double segment_cache_hit_rate = 0;
  uint64_t gc_backlog = 0;       // MVCC versions awaiting collection
  uint64_t degraded_blocks = 0;  // replicated blocks down to one copy
  struct QueueGauge {
    std::string name;
    int slots = 0;
    int queued = 0;
    int running = 0;
    int max_in_flight = 0;
  };
  std::vector<QueueGauge> queues;
};

/// Fixed-capacity ring of gauge samples; the oldest sample falls off
/// once the ring is full. Thread-safe.
class GaugeHistory {
 public:
  explicit GaugeHistory(size_t capacity = 256) : capacity_(capacity) {}

  void Record(GaugeSample sample) SDW_EXCLUDES(mu_);
  std::vector<GaugeSample> Snapshot() const SDW_EXCLUDES(mu_);
  void Clear() SDW_EXCLUDES(mu_);

 private:
  const size_t capacity_;
  mutable common::Mutex mu_{common::LockRank::kGaugeHistory};
  int next_seq_ SDW_GUARDED_BY(mu_) = 1;
  std::deque<GaugeSample> ring_ SDW_GUARDED_BY(mu_);
};

}  // namespace sdw::obs

#endif  // SDW_OBS_PROFILER_H_
