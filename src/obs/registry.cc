#include "obs/registry.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

namespace sdw::obs {

namespace {

double BitsToDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

uint64_t DoubleToBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

// Formats a bucket edge without trailing zeros ("0.001", "16", "2.5").
std::string EdgeName(double edge) {
  std::ostringstream os;
  os << edge;
  return os.str();
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::Observe(double v) {
  size_t i = std::upper_bound(bounds_.begin(), bounds_.end(), v) -
             bounds_.begin();
  if (i > 0 && v == bounds_[i - 1]) --i;  // inclusive upper edge
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t old_bits = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      old_bits, DoubleToBits(BitsToDouble(old_bits) + v),
      std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const {
  return BitsToDouble(sum_bits_.load(std::memory_order_relaxed));
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

Registry& Registry::Global() {
  static Registry* r = new Registry;
  return *r;
}

Counter* Registry::counter(const std::string& name) {
  common::MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::gauge(const std::string& name) {
  common::MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  common::MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

std::vector<MetricRow> Registry::Snapshot() const {
  common::MutexLock lock(mu_);
  std::vector<MetricRow> rows;
  for (const auto& [name, c] : counters_) {
    rows.push_back({name, "counter", static_cast<double>(c->value())});
  }
  for (const auto& [name, g] : gauges_) {
    rows.push_back({name, "gauge", static_cast<double>(g->value())});
  }
  for (const auto& [name, h] : histograms_) {
    for (size_t i = 0; i < h->num_buckets(); ++i) {
      std::string edge = i < h->bounds().size()
                             ? "le_" + EdgeName(h->bounds()[i])
                             : "le_inf";
      rows.push_back({name + "." + edge, "histogram",
                      static_cast<double>(h->bucket_count(i))});
    }
    rows.push_back(
        {name + ".count", "histogram", static_cast<double>(h->count())});
    rows.push_back({name + ".sum", "histogram", h->sum()});
  }
  std::sort(rows.begin(), rows.end(),
            [](const MetricRow& a, const MetricRow& b) {
              return a.name < b.name;
            });
  return rows;
}

void Registry::Reset() {
  common::MutexLock lock(mu_);
  for (auto& [_, c] : counters_) c->Reset();
  for (auto& [_, g] : gauges_) g->Reset();
  for (auto& [_, h] : histograms_) h->Reset();
}

uint64_t NextLogTick() {
  static std::atomic<uint64_t> tick{0};
  return tick.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace sdw::obs
