#ifndef SDW_OBS_REGISTRY_H_
#define SDW_OBS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace sdw::obs {

/// A monotonically increasing named count (reads served, rows loaded,
/// faults injected). Lock-free hot path: callers hold the pointer
/// returned by Registry::counter() and Add() is one relaxed fetch_add.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A named instantaneous level (blocks resident, single-copy blocks).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A fixed-bucket histogram: `bounds` are inclusive upper bucket edges,
/// ascending; one implicit overflow bucket catches everything above the
/// last edge. Observe() is lock-free (one fetch_add per observation plus
/// a CAS loop for the double-typed sum).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Number of buckets including the overflow bucket.
  size_t num_buckets() const { return buckets_.size(); }
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  /// Double stored as bits so the sum can be CAS-accumulated.
  std::atomic<uint64_t> sum_bits_{0};
};

/// One row of a registry snapshot. Histograms expand to one row per
/// bucket ("name.le_<edge>" / "name.le_inf") plus "name.count" and
/// "name.sum" so the whole registry flattens into stv_metrics.
struct MetricRow {
  std::string name;
  std::string kind;  // "counter" | "gauge" | "histogram"
  double value = 0;
};

/// The process-wide metrics registry. Metric objects are created on
/// first use (mutex-guarded registration) and live for the process
/// lifetime, so call sites cache the returned pointer and the update
/// path never takes the registry lock.
class Registry {
 public:
  static Registry& Global();

  Counter* counter(const std::string& name) SDW_EXCLUDES(mu_);
  Gauge* gauge(const std::string& name) SDW_EXCLUDES(mu_);
  /// `bounds` are only used on first registration of `name`.
  Histogram* histogram(const std::string& name, std::vector<double> bounds)
      SDW_EXCLUDES(mu_);

  /// Flattened values of every registered metric, sorted by name. The
  /// lock covers the map walk only; values are relaxed atomic reads, so
  /// a snapshot never blocks the lock-free update path.
  std::vector<MetricRow> Snapshot() const SDW_EXCLUDES(mu_);

  /// Zeroes every metric's value; registrations (and cached pointers)
  /// stay valid.
  void Reset() SDW_EXCLUDES(mu_);

 private:
  /// Near-leaf rank: metric registration happens on first use, which
  /// may be under any other lock in the tree (static-local counters in
  /// locked sections).
  mutable common::Mutex mu_{common::LockRank::kMetricsRegistry};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      SDW_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ SDW_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      SDW_GUARDED_BY(mu_);
};

/// Tick source for SDW_LOG timestamps: a process-wide logical clock
/// advanced once per emitted message. Kept here (not in the query-level
/// virtual clock) so log ordering never perturbs query telemetry.
uint64_t NextLogTick();

}  // namespace sdw::obs

#endif  // SDW_OBS_REGISTRY_H_
