#ifndef SDW_DURABILITY_COMMIT_LOG_H_
#define SDW_DURABILITY_COMMIT_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "backup/s3sim.h"
#include "common/bytes.h"
#include "common/fault_injector.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/thread_annotations.h"

namespace sdw::durability {

/// Crash-site names along the warehouse commit path, in order. The
/// commit log append is the durability point: a statement that crashed
/// before (or inside) its append is atomically absent after recovery;
/// one that crashed anywhere after it is fully present.
inline constexpr char kCrashPreLog[] = "commit:pre-log";
inline constexpr char kCrashTornAppend[] = "commit:torn-log-append";
inline constexpr char kCrashPostLogPreInstall[] = "commit:post-log-pre-install";
inline constexpr char kCrashMidInstall[] = "commit:mid-install";
inline constexpr char kCrashPreAck[] = "commit:post-install-pre-ack";

/// All instrumented sites, for crash-at-every-point sweeps.
inline constexpr const char* kAllCrashSites[] = {
    kCrashPreLog, kCrashTornAppend, kCrashPostLogPreInstall, kCrashMidInstall,
    kCrashPreAck};

/// Durable-commit knobs (WarehouseOptions::durability).
struct DurabilityOptions {
  /// Append every mutating statement to the S3 commit log before its
  /// install (log-before-install) so Recover() can replay the tail.
  bool log_commits = true;
  /// Bounded-retry budget for log appends/reads (same contract as the
  /// backup paths: transient S3 faults degrade to modeled latency).
  common::RetryPolicy retry;
};

/// One durable commit. Statements are logged logically (the SQL text):
/// replay re-executes them through the normal front door, which is
/// deterministic because the writer path is serialized and every
/// placement decision (round-robin cursors, sorts, encodings) is a pure
/// function of table state + statement.
struct LogRecord {
  enum class Kind : uint8_t {
    /// One auto-committed SQL statement.
    kStatement = 0,
    /// A multi-statement transaction, committed as one atomic batch.
    kTransaction = 1,
    /// A cluster resize to `resize_nodes` nodes.
    kResize = 2,
    /// A restore-in-place of snapshot `restore_snapshot_id`.
    kRestore = 3,
  };

  uint64_t lsn = 0;
  Kind kind = Kind::kStatement;
  int session_id = 0;
  std::vector<std::string> statements;
  int resize_nodes = 0;
  uint64_t restore_snapshot_id = 0;
};

/// Wire round-trip. The serialized form ends in a CRC32C trailer;
/// deserialization rejects torn or bit-flipped records as kCorruption —
/// what recovery truncates the tail at.
void SerializeLogRecord(const LogRecord& record, Bytes* out);
Result<LogRecord> DeserializeLogRecord(const Bytes& data);

/// The S3-backed commit log of one warehouse: an LSN-dense sequence of
/// checksummed records under `<cluster_id>/wal/`, plus two metadata
/// objects — `wal-meta/truncated` (highest LSN ever truncated through,
/// so an empty log still knows its next LSN) and `wal-meta/base` (the
/// snapshot id recovery restores before replaying the tail; read — not
/// written — by BackupManager's delete/age guards).
///
/// The latest snapshot plus the log records after its manifest
/// watermark form a complete recovery chain: §2.2-2.3's "S3 is the
/// durability story", extended from block granularity to commits.
///
/// Appends are serialized by the caller (the warehouse's writer_mu_);
/// the internal lock only makes the cached cursor safe against
/// concurrent readers of last_lsn().
class CommitLog {
 public:
  CommitLog(backup::S3* s3, std::string region, std::string cluster_id);

  CommitLog(const CommitLog&) = delete;
  CommitLog& operator=(const CommitLog&) = delete;

  /// Appends `record` as the next LSN and returns it. With a crash
  /// controller armed at kCrashTornAppend, writes only half the record
  /// and goes down — the torn tail recovery must truncate.
  Result<uint64_t> Append(LogRecord record) SDW_EXCLUDES(mu_);

  struct Tail {
    std::vector<LogRecord> records;
    /// First unreadable LSN (torn/corrupt/missing mid-sequence);
    /// 0 when the tail ended cleanly.
    uint64_t torn_lsn = 0;
  };
  /// Reads every record with lsn > after_lsn, stopping (and reporting
  /// torn_lsn) at the first record that fails its checksum.
  Result<Tail> ReadTail(uint64_t after_lsn) SDW_EXCLUDES(mu_);

  /// Deletes records with lsn <= `lsn` (a fresh snapshot absorbed
  /// them) and advances the truncation marker.
  Status TruncateThrough(uint64_t lsn) SDW_EXCLUDES(mu_);

  /// Deletes records with lsn >= `lsn` (a torn tail); the next append
  /// reuses the slot.
  Status TruncateFrom(uint64_t lsn) SDW_EXCLUDES(mu_);

  /// Highest LSN appended (0 when the log is empty), derived from the
  /// surviving objects on first use — a fresh process sees the crashed
  /// one's log.
  Result<uint64_t> LastLsn() SDW_EXCLUDES(mu_);

  /// The recovery-base snapshot pointer (0 = none yet).
  Status SetRecoveryBase(uint64_t snapshot_id);
  Result<uint64_t> GetRecoveryBase();

  void set_retry_policy(common::RetryPolicy policy) {
    retry_policy_ = policy;
  }
  /// Wires crash injection into the append path (torn-append site).
  void set_crash_controller(chaos::CrashController* crash) {
    crash_ = crash;
  }

  std::string RecordKey(uint64_t lsn) const;
  std::string TruncatedKey() const;
  std::string RecoveryBaseKey() const;

 private:
  /// Derives next_lsn_ from the surviving wal/ objects + truncation
  /// marker (idempotent; called by every public op).
  Status EnsureLoaded() SDW_REQUIRES(mu_);

  backup::S3* s3_;
  std::string region_;
  std::string cluster_id_;
  common::RetryPolicy retry_policy_;
  chaos::CrashController* crash_ = nullptr;

  mutable common::Mutex mu_{common::LockRank::kCommitLog};
  bool loaded_ SDW_GUARDED_BY(mu_) = false;
  uint64_t next_lsn_ SDW_GUARDED_BY(mu_) = 1;
  uint64_t truncated_through_ SDW_GUARDED_BY(mu_) = 0;
};

}  // namespace sdw::durability

#endif  // SDW_DURABILITY_COMMIT_LOG_H_
