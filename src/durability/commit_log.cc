#include "durability/commit_log.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/hash.h"
#include "obs/registry.h"

namespace sdw::durability {

namespace {

/// A tiny checksummed u64 object (the two wal-meta pointers).
Bytes SerializeMetaU64(uint64_t value) {
  Bytes out;
  out.reserve(12);  // one allocation; also sidesteps a GCC-12
                    // stringop-overflow false positive on insert growth
  PutFixed64(&out, value);
  PutFixed32(&out, Crc32c(out.data(), out.size()));
  return out;
}

Result<uint64_t> DeserializeMetaU64(const Bytes& data) {
  if (data.size() != 12) return Status::Corruption("wal-meta truncated");
  if (GetFixed32(data.data() + 8) != Crc32c(data.data(), 8)) {
    return Status::Corruption("wal-meta checksum mismatch");
  }
  return GetFixed64(data.data());
}

uint64_t ParseLsnKey(const std::string& key, const std::string& prefix) {
  return std::strtoull(key.c_str() + prefix.size(), nullptr, 10);
}

}  // namespace

void SerializeLogRecord(const LogRecord& record, Bytes* out) {
  const size_t start = out->size();
  PutVarint64(out, record.lsn);
  out->push_back(static_cast<uint8_t>(record.kind));
  PutVarint64(out, static_cast<uint64_t>(record.session_id));
  PutVarint64(out, record.statements.size());
  for (const std::string& sql : record.statements) {
    PutLengthPrefixed(out, sql);
  }
  PutVarint64(out, static_cast<uint64_t>(record.resize_nodes));
  PutVarint64(out, record.restore_snapshot_id);
  PutFixed32(out, Crc32c(out->data() + start, out->size() - start));
}

Result<LogRecord> DeserializeLogRecord(const Bytes& data) {
  if (data.size() < 4) return Status::Corruption("log record truncated");
  const size_t body = data.size() - 4;
  if (GetFixed32(data.data() + body) != Crc32c(data.data(), body)) {
    return Status::Corruption("log record checksum mismatch");
  }
  LogRecord record;
  size_t pos = 0;
  uint64_t v = 0;
  if (!GetVarint64(data, &pos, &v)) return Status::Corruption("log record");
  record.lsn = v;
  if (pos >= body) return Status::Corruption("log record");
  record.kind = static_cast<LogRecord::Kind>(data[pos++]);
  if (!GetVarint64(data, &pos, &v)) return Status::Corruption("log record");
  record.session_id = static_cast<int>(v);
  uint64_t nstatements = 0;
  if (!GetVarint64(data, &pos, &nstatements)) {
    return Status::Corruption("log record");
  }
  for (uint64_t i = 0; i < nstatements; ++i) {
    std::string sql;
    if (!GetLengthPrefixed(data, &pos, &sql)) {
      return Status::Corruption("log record statement truncated");
    }
    record.statements.push_back(std::move(sql));
  }
  if (!GetVarint64(data, &pos, &v)) return Status::Corruption("log record");
  record.resize_nodes = static_cast<int>(v);
  if (!GetVarint64(data, &pos, &v)) return Status::Corruption("log record");
  record.restore_snapshot_id = v;
  return record;
}

CommitLog::CommitLog(backup::S3* s3, std::string region,
                     std::string cluster_id)
    : s3_(s3),
      region_(std::move(region)),
      cluster_id_(std::move(cluster_id)) {}

std::string CommitLog::RecordKey(uint64_t lsn) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%012llu",
                static_cast<unsigned long long>(lsn));
  return cluster_id_ + "/wal/" + buf;
}

std::string CommitLog::TruncatedKey() const {
  return cluster_id_ + "/wal-meta/truncated";
}

std::string CommitLog::RecoveryBaseKey() const {
  return cluster_id_ + "/wal-meta/base";
}

Status CommitLog::EnsureLoaded() {
  if (loaded_) return Status::OK();
  backup::S3Region* region = s3_->region(region_);
  if (region->HasObject(TruncatedKey())) {
    common::Retry retry(retry_policy_);
    SDW_ASSIGN_OR_RETURN(Bytes data, retry.Call<Bytes>([&] {
      return region->GetObject(TruncatedKey());
    }));
    SDW_ASSIGN_OR_RETURN(truncated_through_, DeserializeMetaU64(data));
  }
  // The cursor restarts from whatever survived: the highest record
  // object, or the truncation marker when the tail was fully absorbed
  // by a snapshot.
  const std::string prefix = cluster_id_ + "/wal/";
  uint64_t last = truncated_through_;
  for (const std::string& key : region->ListPrefix(prefix)) {
    last = std::max(last, ParseLsnKey(key, prefix));
  }
  next_lsn_ = last + 1;
  loaded_ = true;
  return Status::OK();
}

Result<uint64_t> CommitLog::Append(LogRecord record) {
  static obs::Counter* appends =
      obs::Registry::Global().counter("sdw_durability_log_appends");
  static obs::Counter* bytes =
      obs::Registry::Global().counter("sdw_durability_log_bytes");
  common::MutexLock lock(mu_);
  if (crash_ != nullptr) SDW_RETURN_IF_ERROR(crash_->Down());
  SDW_RETURN_IF_ERROR(EnsureLoaded());
  record.lsn = next_lsn_;
  Bytes wire;
  SerializeLogRecord(record, &wire);
  // Torn-append crash: the process dies mid-upload, leaving a half
  // record at the head slot. Recovery must detect it by checksum and
  // truncate — the statement was never acknowledged.
  const bool torn = crash_ != nullptr && crash_->CrashNow(kCrashTornAppend);
  if (torn) wire.resize(wire.size() / 2);
  common::Retry retry(retry_policy_);
  SDW_RETURN_IF_ERROR(retry.CallVoid([&] {
    return s3_->region(region_)->PutObject(RecordKey(record.lsn), wire);
  }));
  ++next_lsn_;
  appends->Add();
  bytes->Add(wire.size());
  if (torn) {
    return Status::Aborted("crash injected at '" +
                           std::string(kCrashTornAppend) + "'");
  }
  return record.lsn;
}

Result<CommitLog::Tail> CommitLog::ReadTail(uint64_t after_lsn) {
  common::MutexLock lock(mu_);
  SDW_RETURN_IF_ERROR(EnsureLoaded());
  backup::S3Region* region = s3_->region(region_);
  const std::string prefix = cluster_id_ + "/wal/";
  uint64_t last = 0;
  for (const std::string& key : region->ListPrefix(prefix)) {
    last = std::max(last, ParseLsnKey(key, prefix));
  }
  Tail tail;
  common::Retry retry(retry_policy_);
  // Records truncated through `truncated_through_` are gone by design,
  // not torn; start after whichever cursor is further along.
  for (uint64_t lsn = std::max(after_lsn, truncated_through_) + 1;
       lsn <= last; ++lsn) {
    Result<Bytes> data = retry.Call<Bytes>([&] {
      return region->GetObject(RecordKey(lsn));
    });
    if (!data.ok() && data.status().IsNotFound()) {
      // A hole in the sequence: everything past it is unreachable from
      // the recovery chain and must be truncated with it.
      tail.torn_lsn = lsn;
      break;
    }
    SDW_RETURN_IF_ERROR(data.status());
    Result<LogRecord> record = DeserializeLogRecord(*data);
    if (!record.ok()) {
      tail.torn_lsn = lsn;
      break;
    }
    if (record->lsn != lsn) {
      tail.torn_lsn = lsn;
      break;
    }
    tail.records.push_back(std::move(*record));
  }
  return tail;
}

Status CommitLog::TruncateThrough(uint64_t lsn) {
  common::MutexLock lock(mu_);
  SDW_RETURN_IF_ERROR(EnsureLoaded());
  if (lsn <= truncated_through_) return Status::OK();
  backup::S3Region* region = s3_->region(region_);
  const std::string prefix = cluster_id_ + "/wal/";
  common::Retry retry(retry_policy_);
  for (const std::string& key : region->ListPrefix(prefix)) {
    if (ParseLsnKey(key, prefix) > lsn) continue;
    SDW_RETURN_IF_ERROR(
        retry.CallVoid([&] { return region->DeleteObject(key); }));
  }
  truncated_through_ = lsn;
  next_lsn_ = std::max(next_lsn_, truncated_through_ + 1);
  // The marker makes the cursor derivable from an empty log: without
  // it, a crash right after a snapshot truncated everything would
  // restart LSNs at 1 and alias absorbed records.
  return retry.CallVoid([&] {
    return region->PutObject(TruncatedKey(),
                             SerializeMetaU64(truncated_through_));
  });
}

Status CommitLog::TruncateFrom(uint64_t lsn) {
  static obs::Counter* truncated =
      obs::Registry::Global().counter("sdw_durability_torn_truncated");
  common::MutexLock lock(mu_);
  SDW_RETURN_IF_ERROR(EnsureLoaded());
  backup::S3Region* region = s3_->region(region_);
  const std::string prefix = cluster_id_ + "/wal/";
  common::Retry retry(retry_policy_);
  for (const std::string& key : region->ListPrefix(prefix)) {
    if (ParseLsnKey(key, prefix) < lsn) continue;
    SDW_RETURN_IF_ERROR(
        retry.CallVoid([&] { return region->DeleteObject(key); }));
    truncated->Add();
  }
  next_lsn_ = std::min(next_lsn_, std::max(lsn, truncated_through_ + 1));
  return Status::OK();
}

Result<uint64_t> CommitLog::LastLsn() {
  common::MutexLock lock(mu_);
  SDW_RETURN_IF_ERROR(EnsureLoaded());
  return next_lsn_ - 1;
}

Status CommitLog::SetRecoveryBase(uint64_t snapshot_id) {
  common::Retry retry(retry_policy_);
  return retry.CallVoid([&] {
    return s3_->region(region_)->PutObject(RecoveryBaseKey(),
                                           SerializeMetaU64(snapshot_id));
  });
}

Result<uint64_t> CommitLog::GetRecoveryBase() {
  backup::S3Region* region = s3_->region(region_);
  if (!region->HasObject(RecoveryBaseKey())) return 0;
  common::Retry retry(retry_policy_);
  SDW_ASSIGN_OR_RETURN(Bytes data, retry.Call<Bytes>([&] {
    return region->GetObject(RecoveryBaseKey());
  }));
  return DeserializeMetaU64(data);
}

}  // namespace sdw::durability
