#!/usr/bin/env python3
"""AST-based concurrency analyzer for SimpleDW.

Where tools/lint.py does fast textual sweeps, this tool parses the real
AST through libclang over the exported compile database, so its checks
see scopes, types and declarations instead of regex approximations
(DESIGN.md section 4f):

  log-under-lock A statement expanding SDW_LOG inside a scope where a
                 RAII lock guard (common::MutexLock / ReaderMutexLock /
                 WriterMutexLock / std::lock_guard / unique_lock /
                 scoped_lock) is live. Same contract as the lint rule,
                 but with true compound-statement scoping instead of
                 brace counting.
  callback-under-lock
                 Invoking a std::function (member, local or parameter)
                 while a RAII lock is live — the section-4f callback
                 rule: hooks are copied out under a short lock and
                 called after release, never invoked under it.
  unguarded-mutable-member
                 A class that owns a mutex (common::Mutex /
                 SharedMutex / std::mutex) declaring a `mutable` member
                 with no SDW_GUARDED_BY / SDW_PT_GUARDED_BY annotation.
                 `mutable` means "written from const methods", which
                 under concurrency means "needs a guard". Exempt:
                 mutexes and condition variables themselves,
                 std::atomic members, and members whose own class owns
                 a mutex (internally synchronized, e.g. FaultPoint).
  bare-no-thread-safety-analysis
                 SDW_NO_THREAD_SAFETY_ANALYSIS on a declaration with
                 neither an attached doc comment nor a // comment on
                 the preceding lines — the AST view of the lint rule.

Suppression: append `// analyze:allow(<rule>)` to the offending line.

Fixture mode (--check-fixtures) parses tests/analyze_fixtures/
standalone and demands every `// analyze:expect(<rule>)` line produces
exactly that violation and nothing else fires — the negative test that
proves each check still works.

libclang is pinned to clang 14 (the version the clang-analysis CI job
installs): the loader tries the versioned library names first and only
falls back to an unversioned libclang with a warning. Without any
usable libclang the tool prints SKIPPED and exits 0 so laptops without
the toolchain stay green; CI passes --strict, which turns SKIPPED (and
parse errors) into failures.

Exit status: 0 clean or skipped, 1 violations / fixture expectations
unmet, 2 analysis unavailable or broken under --strict.
"""

import argparse
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
FIXTURE_DIR = REPO_ROOT / "tests" / "analyze_fixtures"

ALLOW_RE = re.compile(r"//\s*analyze:allow\(([a-z0-9-]+)\)")
EXPECT_RE = re.compile(r"//\s*analyze:expect\(([a-z0-9-]+)\)")

# Versioned names first: the pin. An unversioned fallback loads with a
# warning so a newer local LLVM still works for ad-hoc runs.
PINNED_LIBCLANG_CANDIDATES = [
    "libclang-14.so.1",
    "libclang-14.so",
    "libclang.so.14",
    "/usr/lib/llvm-14/lib/libclang.so.1",
    "/usr/lib/llvm-14/lib/libclang-14.so.1",
]
def _discovered_libclangs():
    """Versioned sonames installed on this machine (fallback pool):
    distros ship only libclang-<N>.so.1, so a fixed name list cannot
    cover every runner image."""
    import glob

    found = []
    for pattern in (
        "/usr/lib/llvm-*/lib/libclang.so.1",
        "/usr/lib/llvm-*/lib/libclang-*.so.1",
        "/usr/lib/*-linux-gnu/libclang-*.so.1",
        "/usr/lib/*-linux-gnu/libclang.so.1",
    ):
        found.extend(sorted(glob.glob(pattern), reverse=True))
    return found


FALLBACK_LIBCLANG_CANDIDATES = ["libclang.so.1", "libclang.so"]

RAII_LOCK_TYPES = (
    "MutexLock",
    "ReaderMutexLock",
    "WriterMutexLock",
    "lock_guard",
    "unique_lock",
    "scoped_lock",
)

MUTEX_TYPE_SUFFIXES = (
    "::Mutex",
    "::SharedMutex",
    "std::mutex",
    "std::shared_mutex",
    "std::recursive_mutex",
    "std::timed_mutex",
)

NO_TSA_DEFINITION_FILE = "src/common/thread_annotations.h"
NO_TSA_COMMENT_WINDOW = 6


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def key(self):
        return (self.path, self.line, self.rule)

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def rel(path):
    try:
        return str(pathlib.Path(path).resolve().relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def load_cindex(explicit_path=None):
    """Returns (cindex_module, index, note) or (None, None, reason)."""
    try:
        from clang import cindex
    except ImportError as e:
        return None, None, f"python clang bindings not importable ({e})"
    candidates = []
    if explicit_path:
        candidates = [explicit_path]
    else:
        candidates = [None]  # default search first
        candidates += PINNED_LIBCLANG_CANDIDATES
        candidates += FALLBACK_LIBCLANG_CANDIDATES
        candidates += [
            c for c in _discovered_libclangs() if c not in candidates
        ]
    last_error = "no candidates tried"
    for candidate in candidates:
        try:
            if candidate is not None:
                cindex.Config.loaded = False
                cindex.Config.set_library_file(candidate)
            index = cindex.Index.create()
            note = None
            if candidate is not None and "14" not in candidate:
                note = (
                    f"warning: using unpinned {candidate} — results may "
                    "differ from the pinned libclang-14"
                )
            return cindex, index, note
        except Exception as e:  # LibclangError, OSError, ...
            last_error = str(e).splitlines()[0] if str(e) else repr(e)
            continue
    return None, None, f"no usable libclang ({last_error})"


class Analyzer:
    """Runs the four checks over parsed translation units, deduping
    findings across TUs (headers are parsed once per includer)."""

    def __init__(self, cindex, allowed_roots):
        self.cindex = cindex
        self.CursorKind = cindex.CursorKind
        self.TokenKind = cindex.TokenKind
        # Only locations under these directories are reported.
        self.allowed_roots = [pathlib.Path(r).resolve() for r in allowed_roots]
        self.violations = {}
        self._file_lines = {}
        self._seen_classes = set()
        self._seen_decls = set()

    # ---------- shared helpers ----------

    def _in_scope(self, location):
        if location.file is None:
            return False
        p = pathlib.Path(location.file.name).resolve()
        return any(
            root == p or root in p.parents for root in self.allowed_roots
        )

    def _lines(self, filename):
        if filename not in self._file_lines:
            try:
                text = pathlib.Path(filename).read_text(encoding="utf-8")
                self._file_lines[filename] = text.splitlines()
            except OSError:
                self._file_lines[filename] = []
        return self._file_lines[filename]

    def _allowed(self, filename, lineno, rule):
        lines = self._lines(filename)
        if 1 <= lineno <= len(lines):
            m = ALLOW_RE.search(lines[lineno - 1])
            return bool(m and m.group(1) == rule)
        return False

    def _report(self, location, rule, message):
        if not self._in_scope(location):
            return
        filename = location.file.name
        if self._allowed(filename, location.line, rule):
            return
        v = Violation(rel(filename), location.line, rule, message)
        self.violations[v.key()] = v

    # ---------- per-TU driver ----------

    def analyze_tu(self, tu):
        self._walk(tu.cursor)

    def _walk(self, cursor):
        CK = self.CursorKind
        for child in cursor.get_children():
            # Prune whole subtrees outside the reporting scope (system
            # headers, third-party code): reports are scope-limited
            # anyway, and cross-file type lookups (field types, e.g.
            # FaultPoint) go through get_declaration(), not this walk.
            if not self._in_scope(child.location):
                continue
            kind = child.kind
            if kind in (CK.NAMESPACE, CK.UNEXPOSED_DECL, CK.LINKAGE_SPEC):
                self._walk(child)
            elif kind in (CK.CLASS_DECL, CK.STRUCT_DECL, CK.CLASS_TEMPLATE):
                if child.is_definition() and self._in_scope(child.location):
                    self._check_class(child)
                self._walk(child)  # nested classes, methods with bodies
            elif kind in (
                CK.CXX_METHOD,
                CK.FUNCTION_DECL,
                CK.CONSTRUCTOR,
                CK.DESTRUCTOR,
                CK.FUNCTION_TEMPLATE,
            ):
                if self._in_scope(child.location):
                    self._check_function(child)

    # ---------- checks 1 & 2: held-lock regions ----------

    def _lock_regions(self, node, regions):
        """Collects (file, first_line, last_line) spans where a RAII
        lock declared in a compound statement is live (decl line to the
        end of its enclosing compound)."""
        CK = self.CursorKind
        if node.kind == CK.COMPOUND_STMT:
            end_line = node.extent.end.line
            for child in node.get_children():
                if child.kind == CK.DECL_STMT:
                    for d in child.get_children():
                        if d.kind == CK.VAR_DECL and any(
                            t in d.type.spelling for t in RAII_LOCK_TYPES
                        ):
                            if d.location.file is not None:
                                regions.append(
                                    (
                                        d.location.file.name,
                                        d.location.line,
                                        end_line,
                                    )
                                )
                self._lock_regions(child, regions)
        else:
            for child in node.get_children():
                self._lock_regions(child, regions)

    @staticmethod
    def _in_region(location, regions):
        if location.file is None:
            return False
        return any(
            location.file.name == f and start <= location.line <= end
            for f, start, end in regions
        )

    def _check_function(self, cursor):
        key = (str(cursor.location.file), cursor.location.line,
               cursor.spelling)
        if key in self._seen_decls:
            return
        self._seen_decls.add(key)
        self._check_bare_no_tsa(cursor)
        body = None
        for child in cursor.get_children():
            if child.kind == self.CursorKind.COMPOUND_STMT:
                body = child
        if body is None:
            return
        regions = []
        self._lock_regions(body, regions)
        if not regions:
            return
        # Token pass: SDW_LOG sites are macro usages, visible only in
        # the pre-expansion token stream.
        for tok in body.get_tokens():
            if (
                tok.kind == self.TokenKind.IDENTIFIER
                and tok.spelling == "SDW_LOG"
                and self._in_region(tok.location, regions)
            ):
                self._report(
                    tok.location, "log-under-lock",
                    "SDW_LOG while a RAII lock is live in this scope — "
                    "copy state out, release, then log",
                )
        self._check_calls(body, regions)

    def _check_calls(self, node, regions):
        CK = self.CursorKind
        if (
            node.kind == CK.CALL_EXPR
            and node.spelling == "operator()"
            and self._in_region(node.location, regions)
        ):
            callee = next(iter(node.get_children()), None)
            if callee is not None:
                canonical = callee.type.get_canonical().spelling
                if "function<" in canonical:
                    self._report(
                        node.location, "callback-under-lock",
                        "std::function invoked while a RAII lock is "
                        "live — copy the hook out under the lock and "
                        "call it after release (section-4f callback "
                        "rule)",
                    )
        for child in node.get_children():
            self._check_calls(child, regions)

    # ---------- check 3: unguarded mutable members ----------

    @staticmethod
    def _is_mutex_type(canonical_spelling):
        s = canonical_spelling.replace("const ", "").strip()
        return s.endswith(MUTEX_TYPE_SUFFIXES) or s in (
            "Mutex", "SharedMutex"
        )

    def _class_owns_mutex(self, class_cursor):
        CK = self.CursorKind
        for child in class_cursor.get_children():
            if child.kind == CK.FIELD_DECL and self._is_mutex_type(
                child.type.get_canonical().spelling
            ):
                return True
        return False

    def _field_tokens(self, field):
        return [
            t.spelling
            for t in field.get_tokens()
            if t.kind in (self.TokenKind.IDENTIFIER, self.TokenKind.KEYWORD)
        ]

    def _check_class(self, cursor):
        key = (str(cursor.location.file), cursor.location.line)
        if key in self._seen_classes:
            return
        self._seen_classes.add(key)
        if not self._class_owns_mutex(cursor):
            return
        CK = self.CursorKind
        for field in cursor.get_children():
            if field.kind != CK.FIELD_DECL:
                continue
            tokens = self._field_tokens(field)
            if "mutable" not in tokens:
                continue
            canonical = field.type.get_canonical().spelling
            if self._is_mutex_type(canonical):
                continue
            if "CondVar" in canonical or "condition_variable" in canonical:
                continue
            if "atomic<" in canonical:
                continue
            if "SDW_GUARDED_BY" in tokens or "SDW_PT_GUARDED_BY" in tokens:
                continue
            decl = field.type.get_declaration()
            if decl is not None and decl.kind in (
                CK.CLASS_DECL, CK.STRUCT_DECL
            ):
                if self._class_owns_mutex(decl):
                    continue  # internally synchronized (e.g. FaultPoint)
            self._report(
                field.location, "unguarded-mutable-member",
                f"mutable member '{field.spelling}' in a mutex-owning "
                "class has no SDW_GUARDED_BY — mutable means written "
                "from const methods, which needs a guard",
            )

    # ---------- check 4: bare SDW_NO_THREAD_SAFETY_ANALYSIS ----------

    def _check_bare_no_tsa(self, cursor):
        if cursor.location.file is None:
            return
        filename = cursor.location.file.name
        if rel(filename) == NO_TSA_DEFINITION_FILE:
            return
        has_macro = any(
            t.kind == self.TokenKind.IDENTIFIER
            and t.spelling == "SDW_NO_THREAD_SAFETY_ANALYSIS"
            for t in cursor.get_tokens()
        )
        if not has_macro:
            return
        if cursor.raw_comment:
            return  # attached doc comment is the why-comment
        lines = self._lines(filename)
        lineno = cursor.location.line
        lo = max(0, lineno - 1 - NO_TSA_COMMENT_WINDOW)
        window = lines[lo : lineno - 1]
        if any(w.lstrip().startswith("//") for w in window):
            return
        self._report(
            cursor.location, "bare-no-thread-safety-analysis",
            "SDW_NO_THREAD_SAFETY_ANALYSIS without a why-comment — say "
            "which invariant the analysis cannot see, or annotate "
            "properly instead",
        )


def tu_parse_args(command):
    """Compiler args for reparsing one compile-db entry: keep includes,
    defines, standards and warnings; drop the compiler, -c/-o and the
    source file itself."""
    raw = list(command.arguments)
    args = []
    skip_next = False
    for a in raw[1:]:
        if skip_next:
            skip_next = False
            continue
        if a == "-o":
            skip_next = True
            continue
        if a == "-c" or a == command.filename:
            continue
        if a.endswith((".cc", ".cpp", ".cxx")):
            continue
        args.append(a)
    return args


def parse_errors(tu):
    return [
        f"{d.location.file}:{d.location.line}: {d.spelling}"
        for d in tu.diagnostics
        if d.severity >= 3  # Error or Fatal
    ]


def run_repo(cindex, index, build_dir, strict):
    db_dir = pathlib.Path(build_dir)
    if not (db_dir / "compile_commands.json").is_file():
        msg = f"analyze: no compile_commands.json under {db_dir}"
        print(msg, file=sys.stderr)
        return 2 if strict else 0
    db = cindex.CompilationDatabase.fromDirectory(str(db_dir))
    analyzer = Analyzer(cindex, [REPO_ROOT / "src"])
    parsed = 0
    failures = []
    for command in db.getAllCompileCommands():
        source = pathlib.Path(command.filename)
        try:
            source_rel = source.resolve().relative_to(REPO_ROOT)
        except ValueError:
            continue
        if not str(source_rel).startswith("src/"):
            continue
        tu = index.parse(str(source), args=tu_parse_args(command))
        errors = parse_errors(tu)
        if errors:
            failures.append(f"{source_rel}: {errors[0]}")
            continue
        analyzer.analyze_tu(tu)
        parsed += 1
    for msg in failures:
        print(f"analyze: parse failure: {msg}", file=sys.stderr)
    if failures and strict:
        return 2
    violations = sorted(analyzer.violations.values(), key=Violation.key)
    for v in violations:
        print(v)
    if violations:
        print(f"analyze: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print(f"analyze: clean ({parsed} translation unit(s))")
    return 0


def run_fixtures(cindex, index, strict):
    fixture_args = ["-xc++", "-std=c++20", f"-I{REPO_ROOT / 'src'}"]
    failures = []
    checked = 0
    for path in sorted(FIXTURE_DIR.glob("*.cc")):
        checked += 1
        tu = index.parse(str(path), args=fixture_args)
        errors = parse_errors(tu)
        if errors:
            failures.append(f"{rel(path)}: parse failure: {errors[0]}")
            continue
        analyzer = Analyzer(cindex, [FIXTURE_DIR])
        analyzer.analyze_tu(tu)
        got = {
            (v.line, v.rule): v for v in analyzer.violations.values()
        }
        expected = set()
        for i, line in enumerate(path.read_text().splitlines(), 1):
            for m in EXPECT_RE.finditer(line):
                expected.add((i, m.group(1)))
        for key in sorted(expected):
            if key not in got:
                failures.append(
                    f"{rel(path)}:{key[0]}: expected [{key[1]}] did not fire"
                )
        for key in sorted(got):
            if key not in expected:
                failures.append(
                    f"{rel(path)}:{key[0]}: unexpected [{key[1]}] "
                    f"({got[key].message})"
                )
    if checked == 0:
        failures.append(f"no fixtures found under {rel(FIXTURE_DIR)}")
    for f in failures:
        print(f)
    if failures:
        print(f"analyze fixtures: {len(failures)} failure(s)",
              file=sys.stderr)
        return 1
    print(f"analyze fixtures: {checked} file(s) behave as expected")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--compile-db", default=str(REPO_ROOT / "build"),
        help="directory containing compile_commands.json (default: build/)",
    )
    parser.add_argument(
        "--check-fixtures", action="store_true",
        help="verify tests/analyze_fixtures/ trip the checks they claim to",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail (exit 2) instead of skipping when libclang is missing "
        "or a translation unit cannot be parsed — what CI uses",
    )
    parser.add_argument(
        "--libclang", default=None,
        help="explicit libclang shared-library path (overrides the pin)",
    )
    args = parser.parse_args()

    cindex, index, note = load_cindex(args.libclang)
    if cindex is None:
        print(f"analyze: SKIPPED — {note}", file=sys.stderr)
        print(
            "analyze: install clang 14's python bindings to run locally "
            "(CI runs this with --strict)",
            file=sys.stderr,
        )
        return 2 if args.strict else 0
    if note:
        print(f"analyze: {note}", file=sys.stderr)

    if args.check_fixtures:
        return run_fixtures(cindex, index, args.strict)
    return run_repo(cindex, index, args.compile_db, args.strict)


if __name__ == "__main__":
    sys.exit(main())
