#!/usr/bin/env python3
"""Repo-invariant linter for SimpleDW.

Enforces the concurrency and determinism conventions the compiler cannot
see (DESIGN.md section 4f):

  wall-clock     Direct use of std::chrono::{steady,system,high_resolution}
                 _clock, rand() or std::random_device anywhere in src/
                 except src/sim/ (sim::Stopwatch is the one sanctioned
                 wall-clock wrapper; bench/ is exempt by scope).
  naked-thread   std::thread / std::jthread construction in src/ outside
                 common/thread_pool.* (all parallelism goes through the
                 shared pool so slice fan-out stays bounded and joinable).
                 Qualified statics (std::thread::hardware_concurrency)
                 are allowed.
  log-under-lock SDW_LOG while a MutexLock / lock_guard / unique_lock is
                 held in an enclosing scope (the log sink formats and
                 locks on its own; logging under a lock stretches the
                 critical section and risks lock-order cycles).
                 Heuristic brace-depth scan; suppress intentional cases.
  metric-name    String literals passed to Registry::Global().counter/
                 gauge/histogram must match sdw_<module>_<name>
                 (lower_snake, at least two segments) so the stv_metrics
                 namespace stays grep-able and collision-free. The same
                 rule covers MakeCacheMetrics("...") prefixes — they
                 expand to <prefix>_hits / _misses / ... counters, so a
                 bad prefix pollutes the namespace four times over.
  mvcc-versions  References to the warehouse's table_versions_ map
                 outside src/warehouse/warehouse.{h,cc}. The map is the
                 MVCC snapshot bookkeeping behind PinSnapshot /
                 BumpVersions; touching it anywhere else bypasses the
                 data_mu_ coherence protocol (readers must capture
                 cluster + versions + chain pins as one triple).
  s3-writes      Direct S3 object mutation (PutObject / DeleteObject)
                 outside src/backup/ and src/durability/. Those two
                 modules own the durability contract — blocks +
                 manifests (backup) and the commit log (durability);
                 an S3 write anywhere else can clobber the recovery
                 chain or leave objects the commit-log truncation and
                 backup GC do not know about.
  system-table-doc
                 Every stl_/stv_ table name that appears as a string
                 literal in src/warehouse/system_tables.cc must also
                 appear in DESIGN.md. System tables are user-facing
                 API; an undocumented one is a contract nobody signed.
  bare-no-thread-safety-analysis
                 SDW_NO_THREAD_SAFETY_ANALYSIS without a why-comment
                 on the immediately preceding lines. The escape hatch
                 turns the analysis off for a whole function; the
                 comment must say which invariant the analysis cannot
                 see (the macro's own definition in
                 common/thread_annotations.h is exempt).
  lock-rank-doc  Every LockRank enumerator declared in
                 src/common/lock_rank.h must appear in DESIGN.md's
                 lock-rank table (section 4f). The rank order IS the
                 documented lock hierarchy; an undocumented rank is an
                 ordering constraint nobody can review.

Suppression: append `// lint:allow(<rule>)` to the offending line.

Fixture mode (--check-fixtures) runs every rule over
tests/lint_fixtures/ regardless of path scoping and demands that each
`// lint:expect(<rule>)` line produces exactly that violation and that
no unexpected violations appear — the negative test that proves the
linter still fires.

Exit status: 0 clean, 1 violations (or fixture expectations unmet).
"""

import argparse
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

SOURCE_SUFFIXES = {".cc", ".h"}

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z0-9-]+)\)")
EXPECT_RE = re.compile(r"//\s*lint:expect\(([a-z0-9-]+)\)")

WALL_CLOCK_RE = re.compile(
    r"std::chrono::(?:steady_clock|system_clock|high_resolution_clock)"
    r"|(?<![\w:])rand\s*\("
    r"|std::random_device"
)
NAKED_THREAD_RE = re.compile(r"std::j?thread\b(?!::)")
LOCK_DECL_RE = re.compile(
    r"\b(?:common::)?MutexLock\s+\w+\s*\("
    r"|\bstd::lock_guard\s*<"
    r"|\bstd::unique_lock\s*<"
    r"|\bstd::scoped_lock\b"
)
LOG_RE = re.compile(r"\bSDW_LOG\s*\(")
METRIC_CALL_RE = re.compile(
    r"Registry::Global\(\)\s*\.\s*(?:counter|gauge|histogram)\s*\(\s*\"([^\"]*)\"",
    re.DOTALL,
)
METRIC_NAME_RE = re.compile(r"^sdw_[a-z0-9]+(?:_[a-z0-9]+)+$")
CACHE_METRICS_CALL_RE = re.compile(
    r"MakeCacheMetrics\s*\(\s*\"([^\"]*)\"", re.DOTALL
)

MVCC_VERSIONS_RE = re.compile(r"\btable_versions_\b")
MVCC_VERSIONS_OWNERS = {
    "src/warehouse/warehouse.h",
    "src/warehouse/warehouse.cc",
}

S3_WRITE_RE = re.compile(r"(?:->|\.)\s*(?:PutObject|DeleteObject)\s*\(")
S3_WRITE_OWNER_PREFIXES = ("src/backup/", "src/durability/")

SYSTEM_TABLE_FILE = "src/warehouse/system_tables.cc"
SYSTEM_TABLE_NAME_RE = re.compile(r'"(st[lv]_[a-z0-9_]+)"')

NO_TSA_RE = re.compile(r"\bSDW_NO_THREAD_SAFETY_ANALYSIS\b")
NO_TSA_DEFINITION_FILE = "src/common/thread_annotations.h"
# How far above a use the why-comment may sit (a multi-line declaration
# plus its doc block).
NO_TSA_COMMENT_WINDOW = 6

LOCK_RANK_FILE = "src/common/lock_rank.h"
LOCK_RANK_ENUM_RE = re.compile(r"\benum\s+class\s+LockRank\b")
LOCK_RANK_ENUMERATOR_RE = re.compile(r"^\s*(k[A-Za-z0-9]+)\s*=")

COMMENT_RE = re.compile(r"//.*$")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def rel(path):
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def strip_comment(line):
    """Drops a trailing // comment (not inside a string literal — good
    enough for this codebase, which has no metrics/locks in macros)."""
    in_string = False
    for i, ch in enumerate(line):
        if ch == '"' and (i == 0 or line[i - 1] != "\\"):
            in_string = not in_string
        elif ch == "/" and not in_string and line[i : i + 2] == "//":
            return line[:i]
    return line


def line_allows(lines, lineno, rule):
    m = ALLOW_RE.search(lines[lineno - 1])
    return bool(m and m.group(1) == rule)


def check_wall_clock(path, lines, scoped):
    """wall-clock: only src/sim/ may read real clocks."""
    p = rel(path)
    if scoped and (not p.startswith("src/") or p.startswith("src/sim/")):
        return []
    out = []
    for i, line in enumerate(lines, 1):
        code = strip_comment(line)
        m = WALL_CLOCK_RE.search(code)
        if m and not line_allows(lines, i, "wall-clock"):
            out.append(
                Violation(
                    p, i, "wall-clock",
                    f"'{m.group(0).strip()}' outside src/sim/ — use "
                    "sim::Stopwatch (src/sim/stopwatch.h) or take the "
                    "value as a parameter",
                )
            )
    return out


def check_naked_thread(path, lines, scoped):
    """naked-thread: only common/thread_pool.* may spawn threads."""
    p = rel(path)
    if scoped and (
        not p.startswith("src/") or p.startswith("src/common/thread_pool.")
    ):
        return []
    out = []
    for i, line in enumerate(lines, 1):
        code = strip_comment(line)
        m = NAKED_THREAD_RE.search(code)
        if m and not line_allows(lines, i, "naked-thread"):
            out.append(
                Violation(
                    p, i, "naked-thread",
                    "std::thread outside common/thread_pool — fan work "
                    "out via ThreadPool::ParallelFor",
                )
            )
    return out


def check_log_under_lock(path, lines, scoped):
    """log-under-lock: SDW_LOG while an RAII lock is live in scope.

    Tracks brace depth per line; an RAII lock declared at depth d is
    considered held until depth drops below d. Lambdas passed while a
    lock is held do run under it at their *definition* site, so a log in
    such a lambda body is (correctly) flagged; lambdas merely defined
    under no lock are not.
    """
    p = rel(path)
    if scoped and not p.startswith("src/"):
        return []
    out = []
    depth = 0
    held = []  # depths at which a lock guard was declared
    for i, line in enumerate(lines, 1):
        code = strip_comment(line)
        if LOCK_DECL_RE.search(code):
            held.append(depth)
        if (
            LOG_RE.search(code)
            and held
            and not line_allows(lines, i, "log-under-lock")
        ):
            out.append(
                Violation(
                    p, i, "log-under-lock",
                    "SDW_LOG while a lock is held — copy state out, "
                    "release, then log",
                )
            )
        for ch in code:
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                while held and depth <= held[-1]:
                    held.pop()
    return out


def check_metric_names(path, text, lines, scoped):
    """metric-name: Registry names must be sdw_<module>_<name>."""
    p = rel(path)
    if scoped and not p.startswith("src/"):
        return []
    out = []
    hits = [(m, "metric") for m in METRIC_CALL_RE.finditer(text)]
    hits += [(m, "cache prefix") for m in CACHE_METRICS_CALL_RE.finditer(text)]
    for m, kind in hits:
        name = m.group(1)
        lineno = text.count("\n", 0, m.start(1)) + 1
        if METRIC_NAME_RE.match(name):
            continue
        if line_allows(lines, lineno, "metric-name"):
            continue
        out.append(
            Violation(
                p, lineno, "metric-name",
                f"{kind} '{name}' does not match sdw_<module>_<name> "
                "(lower_snake, >= 2 segments after sdw_)",
            )
        )
    return out


def check_mvcc_versions(path, lines, scoped):
    """mvcc-versions: only warehouse.{h,cc} may touch table_versions_."""
    p = rel(path)
    if scoped and (not p.startswith("src/") or p in MVCC_VERSIONS_OWNERS):
        return []
    out = []
    for i, line in enumerate(lines, 1):
        code = strip_comment(line)
        m = MVCC_VERSIONS_RE.search(code)
        if m and not line_allows(lines, i, "mvcc-versions"):
            out.append(
                Violation(
                    p, i, "mvcc-versions",
                    "table_versions_ outside src/warehouse/warehouse.{h,cc} "
                    "— go through PinSnapshot / BumpVersions so the "
                    "snapshot-coherence lock stays honest",
                )
            )
    return out


def check_s3_writes(path, lines, scoped):
    """s3-writes: only backup/ and durability/ may mutate S3 objects."""
    p = rel(path)
    if scoped and (
        not p.startswith("src/")
        or any(p.startswith(pre) for pre in S3_WRITE_OWNER_PREFIXES)
    ):
        return []
    out = []
    for i, line in enumerate(lines, 1):
        code = strip_comment(line)
        m = S3_WRITE_RE.search(code)
        if m and not line_allows(lines, i, "s3-writes"):
            out.append(
                Violation(
                    p, i, "s3-writes",
                    "direct S3 object write outside src/backup/ and "
                    "src/durability/ — route mutations through "
                    "BackupManager or CommitLog so the recovery chain "
                    "and log truncation stay coherent",
                )
            )
    return out


def check_system_table_doc(path, lines, scoped):
    """system-table-doc: stl_/stv_ tables served by system_tables.cc
    must be named in DESIGN.md (the documented system-table catalog)."""
    p = rel(path)
    if scoped and p != SYSTEM_TABLE_FILE:
        return []
    design = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
    out = []
    seen = set()
    for i, line in enumerate(lines, 1):
        code = strip_comment(line)
        for m in SYSTEM_TABLE_NAME_RE.finditer(code):
            name = m.group(1)
            if name in seen:
                continue
            seen.add(name)
            if name in design:
                continue
            if line_allows(lines, i, "system-table-doc"):
                continue
            out.append(
                Violation(
                    p, i, "system-table-doc",
                    f"system table '{name}' is not documented in "
                    "DESIGN.md — add it to the system-table catalog "
                    "before shipping it",
                )
            )
    return out


def check_bare_no_tsa(path, lines, scoped):
    """bare-no-thread-safety-analysis: the escape hatch needs a
    why-comment on the preceding lines (DESIGN.md 4f's last-resort
    rule — common/thread_annotations.h promises this is enforced)."""
    p = rel(path)
    if scoped and (not p.startswith("src/") or p == NO_TSA_DEFINITION_FILE):
        return []
    out = []
    for i, line in enumerate(lines, 1):
        code = strip_comment(line)
        if not NO_TSA_RE.search(code):
            continue
        if "#define" in code:  # the macro's definition, not a use
            continue
        if line_allows(lines, i, "bare-no-thread-safety-analysis"):
            continue
        lo = max(0, i - 1 - NO_TSA_COMMENT_WINDOW)
        window = lines[lo : i - 1]
        if any(w.lstrip().startswith("//") for w in window):
            continue
        out.append(
            Violation(
                p, i, "bare-no-thread-safety-analysis",
                "SDW_NO_THREAD_SAFETY_ANALYSIS without a why-comment "
                "above it — say which invariant the analysis cannot "
                "see, or annotate properly instead",
            )
        )
    return out


def check_lock_rank_doc(path, lines, scoped):
    """lock-rank-doc: every LockRank enumerator must appear in
    DESIGN.md's rank table, the same contract system-table-doc
    enforces for stl_/stv_ names."""
    p = rel(path)
    if scoped and p != LOCK_RANK_FILE:
        return []
    if not any(LOCK_RANK_ENUM_RE.search(line) for line in lines):
        return []
    design = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
    out = []
    in_enum = False
    for i, line in enumerate(lines, 1):
        code = strip_comment(line)
        if LOCK_RANK_ENUM_RE.search(code):
            in_enum = True
            continue
        if in_enum and "}" in code:
            in_enum = False
            continue
        if not in_enum:
            continue
        m = LOCK_RANK_ENUMERATOR_RE.match(code)
        if not m:
            continue
        name = m.group(1)
        if name in design:
            continue
        if line_allows(lines, i, "lock-rank-doc"):
            continue
        out.append(
            Violation(
                p, i, "lock-rank-doc",
                f"lock rank '{name}' is not documented in DESIGN.md — "
                "add it to the section-4f rank table (rank, module, "
                "acquired-before edges) before wiring it into a mutex",
            )
        )
    return out


def check_file(path, scoped=True):
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()
    violations = []
    violations += check_wall_clock(path, lines, scoped)
    violations += check_naked_thread(path, lines, scoped)
    violations += check_log_under_lock(path, lines, scoped)
    violations += check_metric_names(path, text, lines, scoped)
    violations += check_mvcc_versions(path, lines, scoped)
    violations += check_s3_writes(path, lines, scoped)
    violations += check_system_table_doc(path, lines, scoped)
    violations += check_bare_no_tsa(path, lines, scoped)
    violations += check_lock_rank_doc(path, lines, scoped)
    return violations


def iter_sources(root):
    for p in sorted(root.rglob("*")):
        if p.suffix in SOURCE_SUFFIXES and p.is_file():
            yield p


def run_repo_lint():
    violations = []
    for p in iter_sources(REPO_ROOT / "src"):
        violations += check_file(p, scoped=True)
    for v in violations:
        print(v)
    if violations:
        print(f"lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


def run_fixture_check():
    fixture_dir = REPO_ROOT / "tests" / "lint_fixtures"
    failures = []
    checked = 0
    for p in iter_sources(fixture_dir):
        checked += 1
        text = p.read_text(encoding="utf-8")
        lines = text.splitlines()
        expected = {}  # (lineno, rule)
        for i, line in enumerate(lines, 1):
            for m in EXPECT_RE.finditer(line):
                expected[(i, m.group(1))] = False
        got = {(v.line, v.rule) for v in check_file(p, scoped=False)}
        for key in expected:
            if key in got:
                expected[key] = True
            else:
                failures.append(
                    f"{rel(p)}:{key[0]}: expected [{key[1]}] did not fire"
                )
        for key in got:
            if key not in expected:
                failures.append(
                    f"{rel(p)}:{key[0]}: unexpected [{key[1]}] violation"
                )
    if checked == 0:
        failures.append(f"no fixtures found under {rel(fixture_dir)}")
    for f in failures:
        print(f)
    if failures:
        print(f"lint fixtures: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print(f"lint fixtures: {checked} file(s) behave as expected")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check-fixtures",
        action="store_true",
        help="verify tests/lint_fixtures/ trip the rules they claim to",
    )
    args = parser.parse_args()
    if args.check_fixtures:
        return run_fixture_check()
    return run_repo_lint()


if __name__ == "__main__":
    sys.exit(main())
